//! Training loop implementing the paper's SHL benchmark methodology
//! (§4.2, Table 3 hyperparameters).

use crate::layer::Layer;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optim::Sgd;
use bfly_data::{shuffled_batches, Dataset, Split};
use bfly_tensor::{derived_rng, Matrix};

/// Hyperparameters, defaulting to Table 3 of the paper.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Learning rate (paper: 0.001).
    pub lr: f32,
    /// Momentum (paper: 0.9).
    pub momentum: f32,
    /// Mini-batch size (paper: 50).
    pub batch_size: usize,
    /// Number of epochs to train.
    pub epochs: usize,
    /// Seed for batch shuffling.
    pub seed: u64,
    /// If true, prints per-epoch progress to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { lr: 0.001, momentum: 0.9, batch_size: 50, epochs: 10, seed: 0, verbose: false }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Training accuracy over the epoch (running, on training batches).
    pub train_accuracy: f64,
    /// Validation accuracy at epoch end.
    pub val_accuracy: f64,
}

/// Outcome of [`fit`].
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Final test accuracy.
    pub test_accuracy: f64,
    /// Wall-clock seconds spent in forward+backward+step (excludes data
    /// generation), mirroring the paper's "execution time of the layers".
    pub train_seconds: f64,
    /// Number of optimizer steps taken.
    pub steps: usize,
}

/// Trains `model` on `split.train`, validating on `split.val` and finally
/// evaluating on `split.test`.
pub fn fit(model: &mut dyn Layer, split: &Split, config: &TrainConfig) -> TrainReport {
    let opt = Sgd::new(config.lr, config.momentum);
    let mut shuffle_rng = derived_rng(config.seed, 1000);
    let mut epochs = Vec::with_capacity(config.epochs);
    let mut train_seconds = 0.0f64;
    let mut steps = 0usize;
    for epoch in 0..config.epochs {
        let mut loss_sum = 0.0f64;
        let mut correct = 0usize;
        let mut seen = 0usize;
        let batches = shuffled_batches(&split.train, config.batch_size, &mut shuffle_rng);
        let t0 = std::time::Instant::now();
        for batch in &batches {
            model.zero_grad();
            let logits = model.forward(&batch.features, true);
            let out = softmax_cross_entropy(&logits, &batch.labels);
            loss_sum += out.loss * batch.labels.len() as f64;
            correct +=
                (accuracy(&logits, &batch.labels) * batch.labels.len() as f64).round() as usize;
            seen += batch.labels.len();
            let _ = model.backward(&out.grad);
            opt.step(&mut model.params());
            steps += 1;
        }
        train_seconds += t0.elapsed().as_secs_f64();
        let val_accuracy = evaluate(model, &split.val);
        let stats = EpochStats {
            epoch,
            train_loss: loss_sum / seen.max(1) as f64,
            train_accuracy: correct as f64 / seen.max(1) as f64,
            val_accuracy,
        };
        if config.verbose {
            eprintln!(
                "epoch {:>3}  loss {:.4}  train-acc {:.3}  val-acc {:.3}",
                epoch, stats.train_loss, stats.train_accuracy, stats.val_accuracy
            );
        }
        epochs.push(stats);
    }
    let test_accuracy = evaluate(model, &split.test);
    TrainReport { epochs, test_accuracy, train_seconds, steps }
}

/// Computes classification accuracy of `model` on a dataset (inference mode,
/// processed in chunks to bound memory).
pub fn evaluate(model: &mut dyn Layer, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let chunk = 256usize;
    let mut correct = 0usize;
    let mut r = 0usize;
    while r < data.len() {
        let end = (r + chunk).min(data.len());
        let mut feats = Matrix::zeros(end - r, data.dim());
        for (dst, src) in (r..end).enumerate() {
            feats.row_mut(dst).copy_from_slice(data.features.row(src));
        }
        let logits = model.forward(&feats, false);
        correct += (accuracy(&logits, &data.labels[r..end]) * (end - r) as f64).round() as usize;
        r = end;
    }
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use crate::layer::Sequential;
    use bfly_data::{generate, split, SynthSpec};
    use bfly_tensor::seeded_rng;

    fn tiny_split() -> Split {
        let spec = SynthSpec {
            dim: 32,
            num_classes: 3,
            samples: 300,
            latent_dim: 8,
            latent_noise: 0.3,
            pixel_noise: 0.05,
            seed: 5,
        };
        let data = generate(&spec);
        let mut rng = seeded_rng(6);
        split(data, 0.2, 0.15, &mut rng)
    }

    #[test]
    fn training_improves_over_chance() {
        let s = tiny_split();
        let mut rng = seeded_rng(7);
        let mut model = Sequential::new()
            .push(Box::new(Dense::new(32, 32, &mut rng)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Dense::new(32, 3, &mut rng)));
        let config = TrainConfig { epochs: 30, lr: 0.05, ..TrainConfig::default() };
        let report = fit(&mut model, &s, &config);
        assert!(
            report.test_accuracy > 0.5,
            "test accuracy {} not above chance 0.33",
            report.test_accuracy
        );
        // Loss should decrease from first to last epoch.
        let first = report.epochs.first().map(|e| e.train_loss).unwrap_or(0.0);
        let last = report.epochs.last().map(|e| e.train_loss).unwrap_or(0.0);
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn report_counts_steps() {
        let s = tiny_split();
        let mut rng = seeded_rng(8);
        let mut model = Sequential::new().push(Box::new(Dense::new(32, 3, &mut rng)));
        let config = TrainConfig { epochs: 2, batch_size: 50, ..TrainConfig::default() };
        let report = fit(&mut model, &s, &config);
        let batches_per_epoch = s.train.len().div_ceil(50);
        assert_eq!(report.steps, 2 * batches_per_epoch);
        assert_eq!(report.epochs.len(), 2);
    }

    #[test]
    fn evaluate_handles_chunking() {
        let s = tiny_split();
        let mut rng = seeded_rng(9);
        let mut model = Sequential::new().push(Box::new(Dense::new(32, 3, &mut rng)));
        // 300-sample dataset with 256-chunking exercises the partial chunk.
        let acc_full = evaluate(&mut model, &s.train);
        assert!((0.0..=1.0).contains(&acc_full));
    }
}
