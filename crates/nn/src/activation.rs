//! Activation layers.

use crate::layer::Layer;
use crate::param::Param;
use bfly_tensor::{LinOp, Matrix, Scratch};

/// Rectified linear unit — the activation function of Table 3.
pub struct Relu {
    mask: Option<Matrix>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        let out = input.map(|x| x.max(0.0));
        if train {
            self.mask = Some(input.map(|x| if x > 0.0 { 1.0 } else { 0.0 }));
        }
        out
    }

    fn forward_inference(&self, input: &Matrix, _scratch: &mut Scratch) -> Matrix {
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mask = self.mask.take().expect("Relu::backward called without a training-mode forward");
        grad_output.hadamard(&mask)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }

    fn name(&self) -> &str {
        "relu"
    }

    fn trace(&self, batch: usize) -> Vec<LinOp> {
        // Dimension-preserving; the simulators only need elementwise volume.
        // Width is unknown here, so report per-batch-element cost of 0 width
        // and let the adapter supply it; layers that know their width
        // (Dense, structured) embed it in their own traces instead.
        let _ = batch;
        Vec::new()
    }
}

/// Hyperbolic tangent activation (used by ablation experiments).
pub struct Tanh {
    output: Option<Matrix>,
}

impl Tanh {
    /// Creates a Tanh layer.
    pub fn new() -> Self {
        Self { output: None }
    }
}

impl Default for Tanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        let out = input.map(f32::tanh);
        if train {
            self.output = Some(out.clone());
        }
        out
    }

    fn forward_inference(&self, input: &Matrix, _scratch: &mut Scratch) -> Matrix {
        input.map(f32::tanh)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let out =
            self.output.take().expect("Tanh::backward called without a training-mode forward");
        let dtanh = out.map(|y| 1.0 - y * y);
        grad_output.hadamard(&dtanh)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }

    fn name(&self) -> &str {
        "tanh"
    }

    fn trace(&self, _batch: usize) -> Vec<LinOp> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut layer = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let y = layer.forward(&x, false);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks_negatives() {
        let mut layer = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 3.0]]);
        let _ = layer.forward(&x, true);
        let g = layer.backward(&Matrix::from_rows(&[&[5.0, 7.0]]));
        assert_eq!(g.as_slice(), &[0.0, 7.0]);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let mut layer = Tanh::new();
        let x = Matrix::from_rows(&[&[0.3, -0.7]]);
        let _y = layer.forward(&x, true);
        let g = layer.backward(&Matrix::from_rows(&[&[1.0, 1.0]]));
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut l2 = Tanh::new();
            let numeric = (l2.forward(&xp, false).as_slice()[i]
                - l2.forward(&xm, false).as_slice()[i])
                / (2.0 * eps);
            assert!((g.as_slice()[i] - numeric).abs() < 1e-3);
        }
    }
}
