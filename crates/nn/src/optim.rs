//! Optimizers. The paper trains with SGD + momentum (Table 3).

use crate::param::Param;

/// Stochastic gradient descent with classical momentum:
/// `v <- mu * v + g ; w <- w - lr * v`.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate (Table 3: 0.001).
    pub lr: f32,
    /// Momentum coefficient (Table 3: 0.9).
    pub momentum: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { lr, momentum }
    }

    /// The paper's Table 3 configuration: lr = 0.001, momentum = 0.9.
    pub fn paper_default() -> Self {
        Self::new(0.001, 0.9)
    }

    /// Applies one update step to the given parameters using their
    /// accumulated gradients, then leaves the gradients untouched (call
    /// `zero_grad` separately, mirroring the usual framework contract).
    pub fn step(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            assert!(!p.is_frozen(), "SGD step on frozen (forward-only) parameter {}", p.name());
            for i in 0..p.value.len() {
                let v = self.momentum * p.velocity[i] + p.grad[i];
                p.velocity[i] = v;
                p.value[i] -= self.lr * v;
            }
            p.mark_dirty();
        }
    }
}

/// Adam optimizer — not used by the paper's benchmark, provided for the
/// extension experiments (EXPERIMENTS.md ablations).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    step: u64,
    moments: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates an Adam optimizer with the usual defaults.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, step: 0, moments: Vec::new() }
    }

    /// Applies one Adam step. Parameter ordering must be stable across calls
    /// (true for `Sequential::params`).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.moments.len() != params.len() {
            self.moments =
                params.iter().map(|p| (vec![0.0; p.len()], vec![0.0; p.len()])).collect();
        }
        self.step += 1;
        let b1t = 1.0 - self.beta1.powi(self.step as i32);
        let b2t = 1.0 - self.beta2.powi(self.step as i32);
        for (p, (m, v)) in params.iter_mut().zip(&mut self.moments) {
            assert!(!p.is_frozen(), "Adam step on frozen (forward-only) parameter {}", p.name());
            for i in 0..p.value.len() {
                let g = p.grad[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                p.value[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.mark_dirty();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(at: f32) -> Param {
        Param::new("x", vec![at])
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        // Minimise f(x) = x^2 with df = 2x.
        let mut p = quadratic_param(5.0);
        let opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            p.zero_grad();
            let g = 2.0 * p.value[0];
            p.accumulate_grad(&[g]);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value[0].abs() < 1e-3, "x = {}", p.value[0]);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| -> usize {
            let mut p = quadratic_param(5.0);
            let opt = Sgd::new(0.02, momentum);
            for step in 0..2000 {
                p.zero_grad();
                let g = 2.0 * p.value[0];
                p.accumulate_grad(&[g]);
                opt.step(&mut [&mut p]);
                if p.value[0].abs() < 1e-3 {
                    return step;
                }
            }
            2000
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster");
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut p = quadratic_param(3.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            p.zero_grad();
            let g = 2.0 * p.value[0];
            p.accumulate_grad(&[g]);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value[0].abs() < 1e-2, "x = {}", p.value[0]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0, 0.9);
    }
}
