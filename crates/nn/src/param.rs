//! Learnable parameter tensors.

/// A flat learnable parameter buffer with its gradient and momentum state.
///
/// Layers own their `Param`s; the optimizer visits them through
/// [`crate::layer::Layer::params`]. Keeping the momentum buffer inside the
/// parameter (rather than in the optimizer) makes optimizer state survive
/// re-borrowing the layer stack every step without any keying scheme.
#[derive(Debug, Clone)]
pub struct Param {
    name: String,
    /// Current parameter values.
    pub value: Vec<f32>,
    /// Accumulated gradient (same length as `value`; empty when frozen).
    pub grad: Vec<f32>,
    /// SGD momentum buffer (same length as `value`; empty when frozen).
    pub velocity: Vec<f32>,
    frozen: bool,
    dirty: bool,
}

impl Param {
    /// Creates a parameter from initial values.
    ///
    /// New parameters start dirty so layers with derived storage (butterfly
    /// twiddles, block-sparse data) sync on their first forward.
    pub fn new(name: impl Into<String>, value: Vec<f32>) -> Self {
        let n = value.len();
        Self {
            name: name.into(),
            value,
            grad: vec![0.0; n],
            velocity: vec![0.0; n],
            frozen: false,
            dirty: true,
        }
    }

    /// Creates a forward-only parameter: no gradient or momentum buffer is
    /// allocated, cutting the parameter's memory to a third. Calling
    /// [`Param::accumulate_grad`] on it panics.
    pub fn new_frozen(name: impl Into<String>, value: Vec<f32>) -> Self {
        Self {
            name: name.into(),
            value,
            grad: Vec::new(),
            velocity: Vec::new(),
            frozen: true,
            dirty: true,
        }
    }

    /// Flags the values as modified since the owning layer last synced its
    /// derived storage. Optimizer steps call this; any code writing
    /// [`Param::value`] directly must too, or the next forward may compute
    /// with stale factors.
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Returns the dirty flag and clears it. Layers call this at the top of
    /// `forward` to decide whether to re-copy values into derived storage.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::replace(&mut self.dirty, false)
    }

    /// True when the values changed since the last [`Param::take_dirty`].
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Releases the gradient and momentum buffers, converting the parameter
    /// to forward-only (inference) mode. Idempotent; not reversible.
    pub fn freeze(&mut self) {
        self.grad = Vec::new();
        self.velocity = Vec::new();
        self.frozen = true;
    }

    /// True when the parameter is forward-only (no training buffers).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Bytes held by the training-only buffers (gradient + momentum).
    /// Zero after [`Param::freeze`] — this is the saving inference mode buys.
    pub fn train_state_bytes(&self) -> usize {
        (self.grad.len() + self.velocity.len()) * std::mem::size_of::<f32>()
    }

    /// Human-readable parameter name (for debugging and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Accumulates `delta` into the gradient buffer.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn accumulate_grad(&mut self, delta: &[f32]) {
        assert!(!self.frozen, "accumulate_grad on frozen (forward-only) parameter {}", self.name);
        assert_eq!(delta.len(), self.grad.len(), "gradient length mismatch for {}", self.name);
        for (g, d) in self.grad.iter_mut().zip(delta) {
            *g += d;
        }
    }

    /// L2 norm of the gradient (diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grad.iter().map(|g| (*g as f64) * (*g as f64)).sum::<f64>().sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_velocity() {
        let p = Param::new("w", vec![1.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.grad, vec![0.0, 0.0]);
        assert_eq!(p.velocity, vec![0.0, 0.0]);
    }

    #[test]
    fn accumulate_then_zero() {
        let mut p = Param::new("w", vec![0.0; 3]);
        p.accumulate_grad(&[1.0, 2.0, 3.0]);
        p.accumulate_grad(&[1.0, 1.0, 1.0]);
        assert_eq!(p.grad, vec![2.0, 3.0, 4.0]);
        p.zero_grad();
        assert_eq!(p.grad, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn mismatched_grad_panics() {
        let mut p = Param::new("w", vec![0.0; 2]);
        p.accumulate_grad(&[1.0]);
    }

    #[test]
    fn frozen_param_holds_no_training_state() {
        let mut p = Param::new("w", vec![1.0; 8]);
        assert_eq!(p.train_state_bytes(), 8 * 2 * 4);
        p.freeze();
        assert!(p.is_frozen());
        assert_eq!(p.train_state_bytes(), 0);
        assert_eq!(p.grad.capacity(), 0);
        assert_eq!(p.velocity.capacity(), 0);
        assert_eq!(p.value, vec![1.0; 8], "freezing must not touch values");
    }

    #[test]
    fn new_frozen_matches_freeze() {
        let p = Param::new_frozen("w", vec![2.0; 3]);
        assert!(p.is_frozen());
        assert_eq!(p.train_state_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn frozen_param_rejects_gradients() {
        let mut p = Param::new("w", vec![0.0; 2]);
        p.freeze();
        p.accumulate_grad(&[1.0, 1.0]);
    }

    #[test]
    fn dirty_flag_starts_set_and_take_clears_it() {
        let mut p = Param::new("w", vec![1.0]);
        assert!(p.is_dirty(), "fresh params must sync on first forward");
        assert!(p.take_dirty());
        assert!(!p.take_dirty(), "take must clear the flag");
        p.mark_dirty();
        assert!(p.is_dirty());
        assert!(p.take_dirty());
    }

    #[test]
    fn grad_norm_matches_manual() {
        let mut p = Param::new("w", vec![0.0; 2]);
        p.accumulate_grad(&[3.0, 4.0]);
        assert!((p.grad_norm() - 5.0).abs() < 1e-6);
    }
}
