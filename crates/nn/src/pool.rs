//! Spatial pooling layers for the convolutional path.

use crate::layer::Layer;
use crate::param::Param;
use bfly_tensor::{LinOp, Matrix};

/// 2x2 stride-2 max pooling over channel-major feature maps.
pub struct MaxPool2 {
    channels: usize,
    height: usize,
    width: usize,
    /// Argmax index per output element, cached for backward.
    argmax: Option<Vec<u32>>,
}

impl MaxPool2 {
    /// Creates the layer for `channels` maps of `height x width`.
    ///
    /// # Panics
    /// Panics unless height and width are even.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            height.is_multiple_of(2) && width.is_multiple_of(2),
            "MaxPool2 needs even spatial dims"
        );
        Self { channels, height, width, argmax: None }
    }

    /// Output row length (`channels * h/2 * w/2`).
    pub fn out_len(&self) -> usize {
        self.channels * (self.height / 2) * (self.width / 2)
    }

    /// Input row length.
    pub fn in_len(&self) -> usize {
        self.channels * self.height * self.width
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        assert_eq!(input.cols(), self.in_len(), "MaxPool2 input length mismatch");
        let batch = input.rows();
        let (oh, ow) = (self.height / 2, self.width / 2);
        let mut out = Matrix::zeros(batch, self.out_len());
        let mut argmax = vec![0u32; batch * self.out_len()];
        for b in 0..batch {
            let x = input.row(b);
            let y = out.row_mut(b);
            for c in 0..self.channels {
                let plane = c * self.height * self.width;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0u32;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = plane + (2 * oy + dy) * self.width + 2 * ox + dx;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx as u32;
                                }
                            }
                        }
                        let o = c * oh * ow + oy * ow + ox;
                        y[o] = best;
                        argmax[b * self.out_len() + o] = best_idx;
                    }
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let argmax =
            self.argmax.take().expect("MaxPool2::backward called without a training-mode forward");
        let batch = grad_output.rows();
        let mut grad_in = Matrix::zeros(batch, self.in_len());
        for b in 0..batch {
            let g = grad_output.row(b);
            let gi = grad_in.row_mut(b);
            for (o, &gv) in g.iter().enumerate() {
                gi[argmax[b * self.out_len() + o] as usize] += gv;
            }
        }
        grad_in
    }

    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }

    fn name(&self) -> &str {
        "maxpool2"
    }

    fn trace(&self, batch: usize) -> Vec<LinOp> {
        vec![LinOp::Elementwise { n: batch * self.in_len(), flops_per_elem: 1 }]
    }
}

/// Global average pooling: each channel collapses to its spatial mean.
pub struct GlobalAvgPool {
    channels: usize,
    pixels: usize,
}

impl GlobalAvgPool {
    /// Creates the layer for `channels` maps of `height x width`.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self { channels, pixels: height * width }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(input.cols(), self.channels * self.pixels, "GlobalAvgPool length mismatch");
        let batch = input.rows();
        let mut out = Matrix::zeros(batch, self.channels);
        for b in 0..batch {
            let x = input.row(b);
            let y = out.row_mut(b);
            for (c, yc) in y.iter_mut().enumerate() {
                *yc = x[c * self.pixels..(c + 1) * self.pixels].iter().sum::<f32>()
                    / self.pixels as f32;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert_eq!(grad_output.cols(), self.channels, "GlobalAvgPool grad mismatch");
        let batch = grad_output.rows();
        let mut grad_in = Matrix::zeros(batch, self.channels * self.pixels);
        let inv = 1.0 / self.pixels as f32;
        for b in 0..batch {
            let g = grad_output.row(b);
            let gi = grad_in.row_mut(b);
            for c in 0..self.channels {
                let gv = g[c] * inv;
                for p in 0..self.pixels {
                    gi[c * self.pixels + p] = gv;
                }
            }
        }
        grad_in
    }

    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn param_count(&self) -> usize {
        0
    }

    fn name(&self) -> &str {
        "global-avg-pool"
    }

    fn trace(&self, batch: usize) -> Vec<LinOp> {
        vec![LinOp::Elementwise { n: batch * self.channels * self.pixels, flops_per_elem: 1 }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut pool = MaxPool2::new(1, 4, 4);
        let x = Matrix::from_rows(&[&[
            1.0, 2.0, 0.0, 0.0, //
            3.0, 4.0, 0.0, 5.0, //
            0.0, 0.0, -1.0, -2.0, //
            0.0, 6.0, -3.0, -4.0,
        ]]);
        let y = pool.forward(&x, false);
        assert_eq!(y.as_slice(), &[4.0, 5.0, 6.0, -1.0]);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut pool = MaxPool2::new(1, 2, 2);
        let x = Matrix::from_rows(&[&[1.0, 7.0, 3.0, 2.0]]);
        let _ = pool.forward(&x, true);
        let g = pool.backward(&Matrix::from_rows(&[&[10.0]]));
        assert_eq!(g.as_slice(), &[0.0, 10.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_handles_multiple_channels() {
        let mut pool = MaxPool2::new(2, 2, 2);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0]]);
        let y = pool.forward(&x, false);
        assert_eq!(y.as_slice(), &[4.0, -1.0]);
    }

    #[test]
    fn global_avg_pool_means_each_channel() {
        let mut pool = GlobalAvgPool::new(2, 2, 2);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]]);
        let y = pool.forward(&x, false);
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
    }

    #[test]
    fn global_avg_pool_spreads_gradient() {
        let mut pool = GlobalAvgPool::new(1, 2, 2);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let _ = pool.forward(&x, true);
        let g = pool.backward(&Matrix::from_rows(&[&[8.0]]));
        assert_eq!(g.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "even spatial dims")]
    fn maxpool_rejects_odd_dims() {
        let _ = MaxPool2::new(1, 3, 4);
    }
}
