//! Fully-connected (dense) layer — the `torch.nn.Linear` baseline.

use crate::layer::{DenseView, Layer};
use crate::param::Param;
use bfly_tensor::matmul::{matmul, matmul_a_bt_slice, matmul_at_b};
use bfly_tensor::{LinOp, Matrix, Scratch};
use rand::Rng;

/// `y = x W^T + b` with `W: out x in`, matching `torch.nn.Linear` semantics.
///
/// This is the Table 4 "Baseline" method and the reference point of Fig 6.
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform initialisation
    /// (`U(-1/sqrt(in), 1/sqrt(in))`, the `torch.nn.Linear` default).
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let scale = 1.0 / (in_dim as f32).sqrt();
        let weight: Vec<f32> =
            (0..out_dim * in_dim).map(|_| rng.gen_range(-scale..=scale)).collect();
        let bias: Vec<f32> = (0..out_dim).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self {
            in_dim,
            out_dim,
            weight: Param::new("dense.weight", weight),
            bias: Param::new("dense.bias", bias),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// View of the weight as an `out x in` matrix.
    pub fn weight_matrix(&self) -> Matrix {
        Matrix::from_vec(self.out_dim, self.in_dim, self.weight.value.clone())
    }

    /// Overwrites the weight matrix (used to initialise structured-layer
    /// comparisons from a shared dense starting point).
    pub fn set_weight(&mut self, w: &Matrix) {
        assert_eq!(w.shape(), (self.out_dim, self.in_dim), "weight shape mismatch");
        self.weight.value.copy_from_slice(w.as_slice());
    }

    /// Builds a dense layer from an existing `out × in` weight matrix and
    /// bias — the path model rebuilders (offline compression) use to carry
    /// trained parameters into a fresh stack.
    ///
    /// # Panics
    /// Panics if `bias.len() != weight.rows()`.
    pub fn from_parts(weight: Matrix, bias: Vec<f32>) -> Self {
        let (out_dim, in_dim) = weight.shape();
        assert_eq!(bias.len(), out_dim, "bias length must match weight rows");
        Self {
            in_dim,
            out_dim,
            weight: Param::new("dense.weight", weight.into_vec()),
            bias: Param::new("dense.bias", bias),
            cached_input: None,
        }
    }
}

impl Dense {
    /// Shared affine kernel: `y = x W^T + b` borrowing the weight slice
    /// directly, so neither forward path clones the weight matrix.
    fn affine(&self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.in_dim, "Dense input dim mismatch");
        // y = x W^T  (batch rows kept contiguous)
        let mut y = matmul_a_bt_slice(input, &self.weight.value, self.out_dim);
        for r in 0..y.rows() {
            for (v, b) in y.row_mut(r).iter_mut().zip(&self.bias.value) {
                *v += b;
            }
        }
        y
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        let y = self.affine(input);
        if train {
            self.cached_input = Some(input.clone());
        }
        y
    }

    fn forward_inference(&self, input: &Matrix, _scratch: &mut Scratch) -> Matrix {
        self.affine(input)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .take()
            .expect("Dense::backward called without a training-mode forward");
        assert_eq!(grad_output.cols(), self.out_dim, "Dense grad dim mismatch");
        // dW = dY^T X ; db = column-sum(dY) ; dX = dY W
        let dw = matmul_at_b(grad_output, &input);
        self.weight.accumulate_grad(dw.as_slice());
        let mut db = vec![0.0f32; self.out_dim];
        for r in 0..grad_output.rows() {
            for (d, g) in db.iter_mut().zip(grad_output.row(r)) {
                *d += g;
            }
        }
        self.bias.accumulate_grad(&db);
        let w = Matrix::from_vec(self.out_dim, self.in_dim, self.weight.value.clone());
        matmul(grad_output, &w)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn name(&self) -> &str {
        "dense"
    }

    fn trace(&self, batch: usize) -> Vec<LinOp> {
        // One fused kernel: frameworks lower Linear to addmm, which applies
        // the bias inside the matmul epilogue (no separate launch).
        vec![LinOp::MatMul { m: batch, k: self.in_dim, n: self.out_dim }]
    }

    fn dense_view(&self) -> Option<DenseView<'_>> {
        Some(DenseView {
            in_dim: self.in_dim,
            out_dim: self.out_dim,
            weight: &self.weight.value,
            bias: &self.bias.value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_tensor::seeded_rng;

    /// Finite-difference check of dense-layer gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = seeded_rng(11);
        let mut layer = Dense::new(5, 3, &mut rng);
        let x = Matrix::random_uniform(4, 5, 1.0, &mut rng);
        crate::gradcheck::check_gradients(&mut layer, &x, 1e-3, 2e-2);
    }

    #[test]
    fn inference_path_is_bit_identical_to_eval_forward() {
        let mut rng = seeded_rng(16);
        let mut layer = Dense::new(7, 4, &mut rng);
        let x = Matrix::random_uniform(3, 7, 1.0, &mut rng);
        let via_forward = layer.forward(&x, false);
        let mut scratch = bfly_tensor::Scratch::new();
        let via_inference = layer.forward_inference(&x, &mut scratch);
        assert_eq!(via_forward.as_slice(), via_inference.as_slice());
    }

    #[test]
    fn forward_matches_manual_affine() {
        let mut rng = seeded_rng(12);
        let mut layer = Dense::new(3, 2, &mut rng);
        layer.weight.value = vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5];
        layer.bias.value = vec![10.0, -10.0];
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let y = layer.forward(&x, false);
        assert!((y[(0, 0)] - (1.0 - 3.0 + 10.0)).abs() < 1e-6);
        assert!((y[(0, 1)] - (3.0 - 10.0)).abs() < 1e-6);
    }

    #[test]
    fn param_count_matches_baseline_formula() {
        let mut rng = seeded_rng(13);
        // The paper's Table 4 baseline: 1024x1024 hidden + 1024->10 classifier.
        let hidden = Dense::new(1024, 1024, &mut rng);
        let classifier = Dense::new(1024, 10, &mut rng);
        assert_eq!(hidden.param_count() + classifier.param_count(), 1_059_850);
    }

    #[test]
    #[should_panic(expected = "without a training-mode forward")]
    fn backward_without_forward_panics() {
        let mut rng = seeded_rng(14);
        let mut layer = Dense::new(2, 2, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = seeded_rng(15);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Matrix::filled(3, 2, 1.0);
        let _ = layer.forward(&x, true);
        let g = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let _ = layer.backward(&g);
        assert_eq!(layer.bias.grad, vec![9.0, 12.0]);
    }
}
