//! Shared finite-difference gradient checking for layer tests.
//!
//! Every structured layer used to carry its own copy of the same
//! perturb-and-compare loop (butterfly, ortho, pixelfly, dense, conv, …),
//! which drifted in probe indices and tolerances. This module is the single
//! implementation they all call. It lives in the library rather than behind
//! `#[cfg(test)]` so layer tests in *other* crates can reuse it; it costs
//! nothing unless called.

use crate::layer::Layer;
use bfly_tensor::Matrix;

/// Probe loss `sum(y^2) / 2`, whose gradient with respect to `y` is `y`
/// itself — so a layer's analytic gradients can be produced by backpropagating
/// its own forward output.
fn probe_loss(layer: &mut dyn Layer, x: &Matrix) -> f64 {
    layer.forward(x, false).as_slice().iter().map(|v| (*v as f64) * (*v as f64) / 2.0).sum()
}

/// Writes one parameter value and marks the parameter dirty so layers with
/// derived factor storage re-sync on the next forward.
fn set_value(layer: &mut dyn Layer, pi: usize, idx: usize, v: f32) {
    let mut params = layer.params();
    params[pi].value[idx] = v;
    params[pi].mark_dirty();
}

/// Checks every parameter's analytic gradient against central finite
/// differences at three probe indices per parameter (first, middle, last).
///
/// Runs one training-mode forward/backward with the probe loss
/// `sum(y^2) / 2` (so `dL/dy = y`), then for each probed value evaluates the
/// loss at `±eps` and asserts
/// `|analytic - numeric| < tol * max(|numeric|, 1)`.
///
/// # Panics
/// Panics (test-style assert) when a gradient disagrees with its finite
/// difference.
pub fn check_gradients(layer: &mut dyn Layer, x: &Matrix, eps: f32, tol: f32) {
    layer.zero_grad();
    let y = layer.forward(x, true);
    let _ = layer.backward(&y);
    let analytic: Vec<(String, Vec<f32>)> =
        layer.params().iter().map(|p| (p.name().to_string(), p.grad.clone())).collect();
    for (pi, (name, grads)) in analytic.iter().enumerate() {
        let len = grads.len();
        if len == 0 {
            continue;
        }
        let mut picks = vec![0, len / 2, len - 1];
        picks.dedup();
        for idx in picks {
            let orig = layer.params()[pi].value[idx];
            set_value(layer, pi, idx, orig + eps);
            let lp = probe_loss(layer, x);
            set_value(layer, pi, idx, orig - eps);
            let lm = probe_loss(layer, x);
            set_value(layer, pi, idx, orig);
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let got = grads[idx];
            assert!(
                (got - numeric).abs() < tol * numeric.abs().max(1.0),
                "param {pi} ({name}) idx {idx}: analytic {got} vs numeric {numeric}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use bfly_tensor::seeded_rng;

    #[test]
    fn accepts_a_correct_layer() {
        let mut rng = seeded_rng(41);
        let mut layer = Dense::new(5, 3, &mut rng);
        let x = Matrix::random_uniform(4, 5, 1.0, &mut rng);
        check_gradients(&mut layer, &x, 1e-3, 2e-2);
    }

    #[test]
    #[should_panic(expected = "analytic")]
    fn rejects_a_corrupted_gradient() {
        use crate::param::Param;
        use bfly_tensor::LinOp;

        /// `y = w * x` elementwise, but backward reports a doubled gradient.
        struct BadLayer {
            w: Param,
            cached: Option<Matrix>,
        }
        impl Layer for BadLayer {
            fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
                if train {
                    self.cached = Some(input.clone());
                }
                let w = self.w.value[0];
                input.map(|x| w * x)
            }
            fn backward(&mut self, grad_output: &Matrix) -> Matrix {
                let x = self.cached.take().expect("forward first");
                let dw: f32 =
                    grad_output.as_slice().iter().zip(x.as_slice()).map(|(g, x)| g * x).sum();
                self.w.accumulate_grad(&[2.0 * dw]);
                let w = self.w.value[0];
                grad_output.map(|g| w * g)
            }
            fn params(&mut self) -> Vec<&mut Param> {
                vec![&mut self.w]
            }
            fn param_count(&self) -> usize {
                1
            }
            fn name(&self) -> &str {
                "bad"
            }
            fn trace(&self, _batch: usize) -> Vec<LinOp> {
                Vec::new()
            }
        }

        let mut layer = BadLayer { w: Param::new("w", vec![1.5]), cached: None };
        let x = Matrix::from_rows(&[&[1.0, -2.0, 0.5]]);
        check_gradients(&mut layer, &x, 1e-3, 2e-2);
    }
}
