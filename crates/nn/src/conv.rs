//! 2-D convolution via im2col — the other layer family the paper names as a
//! butterfly-replacement target ("every structured linear transform,
//! including convolutional and fully-connected layers").
//!
//! Tensors stay in the workspace's flat `Matrix` convention: one sample per
//! row, channel-major layout `[c][y][x]` within the row.

use crate::layer::Layer;
use crate::param::Param;
use bfly_tensor::matmul::{matmul, matmul_at_b};
use bfly_tensor::{LinOp, Matrix};
use rand::Rng;

/// Spatial/channel shape of one convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl ConvShape {
    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        self.height + 2 * self.padding + 1 - self.kernel
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        self.width + 2 * self.padding + 1 - self.kernel
    }

    /// Flattened input row length.
    pub fn in_len(&self) -> usize {
        self.in_channels * self.height * self.width
    }

    /// Flattened output row length.
    pub fn out_len(&self) -> usize {
        self.out_channels * self.out_height() * self.out_width()
    }

    /// im2col patch length (`in_channels * kernel^2`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unfolds one flattened sample into its im2col matrix:
/// `(out_h * out_w) x patch_len`.
fn im2col(shape: &ConvShape, sample: &[f32]) -> Matrix {
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let k = shape.kernel;
    let p = shape.padding as isize;
    let mut cols = Matrix::zeros(oh * ow, shape.patch_len());
    for oy in 0..oh {
        for ox in 0..ow {
            let row = cols.row_mut(oy * ow + ox);
            let mut idx = 0;
            for c in 0..shape.in_channels {
                let plane = &sample[c * shape.height * shape.width..];
                for ky in 0..k {
                    let iy = oy as isize + ky as isize - p;
                    for kx in 0..k {
                        let ix = ox as isize + kx as isize - p;
                        row[idx] = if iy >= 0
                            && (iy as usize) < shape.height
                            && ix >= 0
                            && (ix as usize) < shape.width
                        {
                            plane[iy as usize * shape.width + ix as usize]
                        } else {
                            0.0
                        };
                        idx += 1;
                    }
                }
            }
        }
    }
    cols
}

/// Accumulates an im2col-shaped gradient back onto a flattened sample
/// (the adjoint of [`im2col`]).
fn col2im(shape: &ConvShape, cols_grad: &Matrix, sample_grad: &mut [f32]) {
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let k = shape.kernel;
    let p = shape.padding as isize;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = cols_grad.row(oy * ow + ox);
            let mut idx = 0;
            for c in 0..shape.in_channels {
                let base = c * shape.height * shape.width;
                for ky in 0..k {
                    let iy = oy as isize + ky as isize - p;
                    for kx in 0..k {
                        let ix = ox as isize + kx as isize - p;
                        if iy >= 0
                            && (iy as usize) < shape.height
                            && ix >= 0
                            && (ix as usize) < shape.width
                        {
                            sample_grad[base + iy as usize * shape.width + ix as usize] += row[idx];
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// A stride-1 2-D convolution layer.
pub struct Conv2d {
    shape: ConvShape,
    /// Weight `(out_channels) x (in_channels * kernel^2)`.
    weight: Param,
    bias: Param,
    cached_input: Option<Matrix>,
}

impl Conv2d {
    /// Creates a Conv2d with Kaiming-uniform init.
    pub fn new(shape: ConvShape, rng: &mut impl Rng) -> Self {
        assert!(shape.kernel >= 1 && shape.kernel <= shape.height + 2 * shape.padding);
        let fan_in = shape.patch_len() as f32;
        let scale = 1.0 / fan_in.sqrt();
        let weight: Vec<f32> = (0..shape.out_channels * shape.patch_len())
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        let bias: Vec<f32> =
            (0..shape.out_channels).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self {
            shape,
            weight: Param::new("conv.weight", weight),
            bias: Param::new("conv.bias", bias),
            cached_input: None,
        }
    }

    /// The convolution shape.
    pub fn shape(&self) -> ConvShape {
        self.shape
    }

    /// Weight as an `out_channels x patch_len` matrix.
    pub fn weight_matrix(&self) -> Matrix {
        Matrix::from_vec(self.shape.out_channels, self.shape.patch_len(), self.weight.value.clone())
    }

    /// Overwrites the weight matrix.
    pub fn set_weight(&mut self, w: &Matrix) {
        assert_eq!(w.shape(), (self.shape.out_channels, self.shape.patch_len()));
        self.weight.value.copy_from_slice(w.as_slice());
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        assert_eq!(input.cols(), self.shape.in_len(), "Conv2d input length mismatch");
        let s = self.shape;
        let (oh, ow) = (s.out_height(), s.out_width());
        let w = self.weight_matrix();
        let mut out = Matrix::zeros(input.rows(), s.out_len());
        for b in 0..input.rows() {
            let cols = im2col(&s, input.row(b));
            // (oh*ow) x patch  @  patch x out_c  -> transpose-free via W^T.
            let y = matmul(&cols, &w.transpose()); // (oh*ow) x out_c
            let row = out.row_mut(b);
            for oc in 0..s.out_channels {
                let bias = self.bias.value[oc];
                for pix in 0..oh * ow {
                    row[oc * oh * ow + pix] = y[(pix, oc)] + bias;
                }
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .take()
            .expect("Conv2d::backward called without a training-mode forward");
        let s = self.shape;
        let (oh, ow) = (s.out_height(), s.out_width());
        assert_eq!(grad_output.cols(), s.out_len(), "Conv2d grad length mismatch");
        let w = self.weight_matrix();
        let mut dweight = Matrix::zeros(s.out_channels, s.patch_len());
        let mut dbias = vec![0.0f32; s.out_channels];
        let mut grad_in = Matrix::zeros(input.rows(), s.in_len());
        for b in 0..input.rows() {
            let g = grad_output.row(b);
            // Reassemble dY as (oh*ow) x out_c.
            let mut dy = Matrix::zeros(oh * ow, s.out_channels);
            for oc in 0..s.out_channels {
                for pix in 0..oh * ow {
                    let v = g[oc * oh * ow + pix];
                    dy[(pix, oc)] = v;
                    dbias[oc] += v;
                }
            }
            let cols = im2col(&s, input.row(b));
            // dW += dY^T @ cols ; dCols = dY @ W.
            dweight.axpy(1.0, &matmul_at_b(&dy, &cols));
            let dcols = matmul(&dy, &w);
            col2im(&s, &dcols, grad_in.row_mut(b));
        }
        self.weight.accumulate_grad(dweight.as_slice());
        self.bias.accumulate_grad(&dbias);
        grad_in
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn name(&self) -> &str {
        "conv2d"
    }

    fn trace(&self, batch: usize) -> Vec<LinOp> {
        let s = self.shape;
        let pixels = s.out_height() * s.out_width();
        vec![
            // im2col gather then one big GEMM (the standard lowering).
            LinOp::Permute { rows: batch * pixels, width: s.patch_len() },
            LinOp::MatMul { m: batch * pixels, k: s.patch_len(), n: s.out_channels },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_tensor::seeded_rng;

    fn shape() -> ConvShape {
        ConvShape { in_channels: 2, out_channels: 3, height: 6, width: 5, kernel: 3, padding: 1 }
    }

    /// Direct (quadruple-loop) convolution for cross-checking.
    fn conv_naive(layer: &Conv2d, input: &[f32]) -> Vec<f32> {
        let s = layer.shape();
        let (oh, ow) = (s.out_height(), s.out_width());
        let w = layer.weight_matrix();
        let mut out = vec![0.0f32; s.out_len()];
        for oc in 0..s.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = layer.bias.value[oc];
                    let mut widx = 0;
                    for c in 0..s.in_channels {
                        for ky in 0..s.kernel {
                            for kx in 0..s.kernel {
                                let iy = oy as isize + ky as isize - s.padding as isize;
                                let ix = ox as isize + kx as isize - s.padding as isize;
                                if iy >= 0
                                    && (iy as usize) < s.height
                                    && ix >= 0
                                    && (ix as usize) < s.width
                                {
                                    acc += w[(oc, widx)]
                                        * input[c * s.height * s.width
                                            + iy as usize * s.width
                                            + ix as usize];
                                }
                                widx += 1;
                            }
                        }
                    }
                    out[oc * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn same_padding_preserves_spatial_size() {
        let s = shape();
        assert_eq!(s.out_height(), 6);
        assert_eq!(s.out_width(), 5);
    }

    #[test]
    fn forward_matches_naive_convolution() {
        let mut rng = seeded_rng(1);
        let mut layer = Conv2d::new(shape(), &mut rng);
        let x = Matrix::random_uniform(2, layer.shape().in_len(), 1.0, &mut rng);
        let y = layer.forward(&x, false);
        for b in 0..2 {
            let expect = conv_naive(&layer, x.row(b));
            for (a, e) in y.row(b).iter().zip(&expect) {
                assert!((a - e).abs() < 1e-4, "{a} vs {e}");
            }
        }
    }

    #[test]
    fn one_by_one_conv_is_channel_mixing() {
        // A 1x1 kernel with no padding is a per-pixel dense channel mix.
        let s = ConvShape {
            in_channels: 4,
            out_channels: 4,
            height: 3,
            width: 3,
            kernel: 1,
            padding: 0,
        };
        let mut rng = seeded_rng(2);
        let mut layer = Conv2d::new(s, &mut rng);
        let x = Matrix::random_uniform(1, s.in_len(), 1.0, &mut rng);
        let y = layer.forward(&x, false);
        let w = layer.weight_matrix();
        // Check pixel (1,1): out[oc] = sum_ic w[oc][ic] * x[ic][1][1] + b.
        let pix = 4; // (y=1, x=1) in a 3x3 plane
        for oc in 0..4 {
            let mut expect = layer.bias.value[oc];
            for ic in 0..4 {
                expect += w[(oc, ic)] * x.row(0)[ic * 9 + pix];
            }
            assert!((y.row(0)[oc * 9 + pix] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = seeded_rng(3);
        let s = ConvShape {
            in_channels: 2,
            out_channels: 2,
            height: 4,
            width: 4,
            kernel: 3,
            padding: 1,
        };
        let mut layer = Conv2d::new(s, &mut rng);
        let x = Matrix::random_uniform(2, s.in_len(), 1.0, &mut rng);
        crate::gradcheck::check_gradients(&mut layer, &x, 1e-3, 3e-2);
        // Input gradient via finite differences on one coordinate.
        let y = layer.forward(&x, true);
        let gx = layer.backward(&y.clone());
        let eps = 1e-3f32;
        let loss = |layer: &mut Conv2d, x: &Matrix| -> f64 {
            layer.forward(x, false).as_slice().iter().map(|v| (*v as f64).powi(2) / 2.0).sum()
        };
        let coord = 5;
        let mut xp = x.clone();
        xp.as_mut_slice()[coord] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[coord] -= eps;
        let numeric = ((loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps as f64)) as f32;
        assert!(
            (gx.as_slice()[coord] - numeric).abs() < 3e-2 * numeric.abs().max(1.0),
            "dx[{coord}]: {} vs {numeric}",
            gx.as_slice()[coord]
        );
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), g> == <x, col2im(g)> — the defining adjoint identity.
        let s = shape();
        let mut rng = seeded_rng(4);
        let x = Matrix::random_uniform(1, s.in_len(), 1.0, &mut rng);
        let cols = im2col(&s, x.row(0));
        let g = Matrix::random_uniform(cols.rows(), cols.cols(), 1.0, &mut rng);
        let lhs: f64 =
            cols.as_slice().iter().zip(g.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let mut back = vec![0.0f32; s.in_len()];
        col2im(&s, &g, &mut back);
        let rhs: f64 = x.as_slice().iter().zip(&back).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_trains_on_a_toy_task() {
        use crate::optim::Sgd;
        // Learn to detect a vertical edge: target = fixed conv of the input.
        let s = ConvShape {
            in_channels: 1,
            out_channels: 1,
            height: 5,
            width: 5,
            kernel: 3,
            padding: 1,
        };
        let mut rng = seeded_rng(5);
        let mut teacher = Conv2d::new(s, &mut rng);
        teacher.bias.value.iter_mut().for_each(|b| *b = 0.0);
        let mut student = Conv2d::new(s, &mut rng);
        let opt = Sgd::new(0.05, 0.9);
        let mut last = f64::MAX;
        let mut first = None;
        for _ in 0..300 {
            let x = Matrix::random_uniform(8, s.in_len(), 1.0, &mut rng);
            let want = teacher.forward(&x, false);
            let got = student.forward(&x, true);
            let diff = got.sub(&want);
            last = diff.as_slice().iter().map(|v| (*v as f64).powi(2)).sum::<f64>();
            first.get_or_insert(last);
            student.zero_grad();
            let _ = student.backward(&diff.scale(1.0 / 8.0));
            opt.step(&mut student.params());
        }
        assert!(last < first.expect("ran") * 0.05, "conv did not learn: {first:?} -> {last}");
    }
}
