//! # bfly-data
//!
//! Datasets and workloads for the butterfly-factorization reproduction:
//! synthetic CIFAR-10-like / MNIST-like classification data (the real
//! datasets are unavailable in this environment — see `synth` module docs for
//! the substitution rationale), train/val/test splitting, mini-batching, and
//! the matrix-multiplication workload definitions shared by the Table 2 /
//! Fig 4 / Fig 6 harnesses.

#![warn(missing_docs)]

pub mod batch;
pub mod dataset;
pub mod images;
pub mod synth;
pub mod workload;

pub use batch::{batches, shuffled_batches, Batch};
pub use dataset::{split, Dataset, Split};
pub use images::{generate_images, ImageSpec};
pub use synth::{generate, SynthSpec};
pub use workload::{skew_sweep, square_sweep, MatmulProblem, RateSegment, TrafficTrace};
