//! Mini-batch iteration over datasets.

use crate::dataset::Dataset;
use bfly_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// One mini-batch: features (one row per sample) and labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Batch features, `batch_size x dim`.
    pub features: Matrix,
    /// Labels for each row of `features`.
    pub labels: Vec<usize>,
}

/// Iterates a dataset in mini-batches of `batch_size` (last batch may be
/// smaller). Order is the dataset's order; shuffle with [`shuffled_batches`]
/// for SGD epochs.
pub fn batches(data: &Dataset, batch_size: usize) -> Vec<Batch> {
    assert!(batch_size > 0, "batch_size must be positive");
    let order: Vec<usize> = (0..data.len()).collect();
    batches_in_order(data, batch_size, &order)
}

/// Like [`batches`] but with a freshly shuffled sample order (one epoch of
/// SGD with the paper's batch size of 50).
pub fn shuffled_batches(data: &Dataset, batch_size: usize, rng: &mut impl Rng) -> Vec<Batch> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(rng);
    batches_in_order(data, batch_size, &order)
}

fn batches_in_order(data: &Dataset, batch_size: usize, order: &[usize]) -> Vec<Batch> {
    order
        .chunks(batch_size)
        .map(|chunk| {
            let mut features = Matrix::zeros(chunk.len(), data.dim());
            let mut labels = Vec::with_capacity(chunk.len());
            for (dst, &src) in chunk.iter().enumerate() {
                features.row_mut(dst).copy_from_slice(data.features.row(src));
                labels.push(data.labels[src]);
            }
            Batch { features, labels }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_tensor::seeded_rng;

    fn toy(n: usize) -> Dataset {
        let features = Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32);
        Dataset::new(features, (0..n).map(|i| i % 2).collect(), 2)
    }

    #[test]
    fn batches_cover_all_samples() {
        let d = toy(23);
        let bs = batches(&d, 5);
        assert_eq!(bs.len(), 5);
        assert_eq!(bs.iter().map(|b| b.labels.len()).sum::<usize>(), 23);
        assert_eq!(bs.last().map(|b| b.labels.len()), Some(3));
    }

    #[test]
    fn batch_rows_pair_with_labels() {
        let d = toy(10);
        let bs = batches(&d, 4);
        assert_eq!(bs[1].features[(0, 0)], d.features[(4, 0)]);
        assert_eq!(bs[1].labels[0], d.labels[4]);
    }

    #[test]
    fn shuffled_batches_preserve_multiset() {
        let d = toy(17);
        let mut rng = seeded_rng(1);
        let bs = shuffled_batches(&d, 4, &mut rng);
        let mut seen: Vec<f32> = bs
            .iter()
            .flat_map(|b| (0..b.labels.len()).map(|r| b.features[(r, 0)]).collect::<Vec<_>>())
            .collect();
        seen.sort_by(f32::total_cmp);
        let mut expected: Vec<f32> = (0..17).map(|r| (r * 2) as f32).collect();
        expected.sort_by(f32::total_cmp);
        assert_eq!(seen, expected);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_panics() {
        let _ = batches(&toy(4), 0);
    }
}
