//! Spatially structured synthetic images — for the convolutional path.
//!
//! The flat generator in [`crate::synth`] deliberately has *no* spatial
//! locality (its classes live behind a global mixing transform), which is
//! right for the SHL benchmark but unlearnable for a convolution. This
//! generator produces oriented-grating images: each class is a
//! characteristic orientation/frequency, jittered per sample — the kind of
//! local edge statistics a small CNN stem is built to pick up.

use crate::dataset::Dataset;
use bfly_tensor::rng::{derived_rng, fill_normal};
use bfly_tensor::Matrix;
use rand::Rng;

/// Configuration for the oriented-grating image generator.
#[derive(Debug, Clone)]
pub struct ImageSpec {
    /// Image side length (images are square, single channel).
    pub side: usize,
    /// Number of classes (orientations).
    pub num_classes: usize,
    /// Number of samples.
    pub samples: usize,
    /// Orientation jitter in radians.
    pub angle_jitter: f32,
    /// Additive pixel noise standard deviation.
    pub noise: f32,
    /// Seed.
    pub seed: u64,
}

impl ImageSpec {
    /// 32x32 gratings in 10 orientation classes (CIFAR-sized).
    pub fn gratings32(samples: usize, seed: u64) -> Self {
        Self { side: 32, num_classes: 10, samples, angle_jitter: 0.06, noise: 0.35, seed }
    }
}

/// Generates the dataset. Deterministic per spec.
pub fn generate_images(spec: &ImageSpec) -> Dataset {
    assert!(spec.num_classes >= 2);
    let mut rng = derived_rng(spec.seed, 10);
    let side = spec.side;
    let mut features = Matrix::zeros(spec.samples, side * side);
    let mut labels = Vec::with_capacity(spec.samples);
    for i in 0..spec.samples {
        let class = i % spec.num_classes;
        labels.push(class);
        // Class orientation spread over half a turn; fixed spatial frequency.
        let base = std::f32::consts::PI * class as f32 / spec.num_classes as f32;
        let angle = base + rng.gen_range(-spec.angle_jitter..=spec.angle_jitter);
        let freq = 2.0 * std::f32::consts::PI * 3.0 / side as f32;
        let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let (s, c) = angle.sin_cos();
        let row = features.row_mut(i);
        for y in 0..side {
            for x in 0..side {
                let u = c * x as f32 + s * y as f32;
                row[y * side + x] = (freq * u + phase).sin();
            }
        }
        if spec.noise > 0.0 {
            let mut noise = vec![0.0f32; side * side];
            fill_normal(&mut noise, spec.noise, &mut rng);
            for (p, n) in row.iter_mut().zip(&noise) {
                *p += n;
            }
        }
    }
    Dataset::new(features, labels, spec.num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let spec = ImageSpec::gratings32(30, 5);
        let a = generate_images(&spec);
        let b = generate_images(&spec);
        assert_eq!(a.features.shape(), (30, 1024));
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels[..10], [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn gratings_have_local_structure() {
        // Neighbouring pixels along the grating direction correlate strongly;
        // that is the property the flat generator lacks and a CNN needs.
        let spec = ImageSpec { noise: 0.0, ..ImageSpec::gratings32(10, 6) };
        let d = generate_images(&spec);
        let side = 32;
        let mut corr_num = 0.0f64;
        let mut corr_den = 0.0f64;
        for r in 0..10 {
            let img = d.features.row(r);
            for y in 0..side {
                for x in 0..side - 1 {
                    corr_num += (img[y * side + x] * img[y * side + x + 1]) as f64;
                    corr_den += (img[y * side + x] * img[y * side + x]) as f64;
                }
            }
        }
        let corr = corr_num / corr_den;
        assert!(corr > 0.5, "horizontal neighbour correlation {corr} too weak");
    }

    #[test]
    fn classes_differ_in_orientation() {
        let spec = ImageSpec { noise: 0.0, angle_jitter: 0.0, ..ImageSpec::gratings32(20, 7) };
        let d = generate_images(&spec);
        // Class 0 (horizontal gradient direction) vs class 5 should have
        // visibly different images.
        let diff = d
            .features
            .row(0)
            .iter()
            .zip(d.features.row(5))
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>();
        assert!(diff > 10.0, "orientation classes indistinguishable");
    }
}
