//! Synthetic stand-ins for CIFAR-10 and MNIST.
//!
//! The real datasets are not available in this environment, so we generate
//! labelled data whose class structure is produced by a *fixed random
//! structured transform* (diagonal x Hadamard x permutation x diagonal — an
//! "SHD" map, itself butterfly-expressible). Class prototypes live in a
//! low-dimensional latent space; samples are noisy prototypes pushed through
//! the transform plus a nonlinearity and pixel noise.
//!
//! Why this preserves the paper's Table 4 behaviour: the accuracy comparison
//! between Baseline / Butterfly / Fastfood / Circulant / Low-rank / Pixelfly
//! is a comparison of *expressiveness per parameter* on a task whose oracle
//! features are a structured linear map of the inputs. Our generator makes
//! that property explicit and tunable, so methods that can represent
//! products of sparse structured factors (butterfly, pixelfly, and the dense
//! baseline) separate from rigid parametrisations (circulant, low-rank) for
//! the same reason they do on CIFAR-10.
//!
//! Dimensions follow the paper exactly: CIFAR-10-like samples are 1024-dim
//! (32x32 grayscale — the dimension implied by the paper's Baseline
//! N_Params = 1,059,850 = 1024^2 + 1024 + 1024*10 + 10) with 10 classes;
//! MNIST-like samples are 784-dim (28x28), which is *not* a power of two —
//! reproducing the paper's observation that pixelfly cannot run on MNIST.

use crate::dataset::Dataset;
use bfly_tensor::fwht::fwht_normalized;
use bfly_tensor::rng::{derived_rng, fill_normal, fill_signs};
use bfly_tensor::{Matrix, Permutation};
use rand::Rng;

/// Configuration for the synthetic classification data generator.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Feature dimensionality of each sample (e.g. 1024 for CIFAR-10-like).
    pub dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of samples to generate.
    pub samples: usize,
    /// Latent dimensionality the class prototypes live in.
    pub latent_dim: usize,
    /// Standard deviation of latent-space within-class noise.
    pub latent_noise: f32,
    /// Standard deviation of additive feature ("pixel") noise.
    pub pixel_noise: f32,
    /// Seed for the whole generation process.
    pub seed: u64,
}

impl SynthSpec {
    /// CIFAR-10-like: 1024-dim grayscale images, 10 classes. Noise levels
    /// are set so a well-tuned dense SHL lands mid-range accuracy (CIFAR-10
    /// grayscale SHL territory), leaving headroom to separate the
    /// structured methods above and below it.
    pub fn cifar10_like(samples: usize, seed: u64) -> Self {
        Self {
            dim: 1024,
            num_classes: 10,
            samples,
            latent_dim: 40,
            latent_noise: 2.2,
            pixel_noise: 0.3,
            seed,
        }
    }

    /// MNIST-like: 784-dim images (28x28 — intentionally *not* a power of
    /// two), 10 classes, an easier task than CIFAR-10-like.
    pub fn mnist_like(samples: usize, seed: u64) -> Self {
        Self {
            dim: 784,
            num_classes: 10,
            samples,
            latent_dim: 24,
            latent_noise: 1.3,
            pixel_noise: 0.15,
            seed,
        }
    }
}

/// The fixed structured transform used by the generator:
/// `x = crop_dim( D2 * H * P * D1 * embed(z) )` followed by `tanh`.
struct StructuredMap {
    /// Power-of-two working dimension (>= spec.dim).
    work_dim: usize,
    d1: Vec<f32>,
    d2: Vec<f32>,
    perm: Permutation,
}

impl StructuredMap {
    fn new(dim: usize, rng: &mut impl Rng) -> Self {
        let work_dim = dim.next_power_of_two();
        let mut d1 = vec![0.0; work_dim];
        let mut d2 = vec![0.0; work_dim];
        // Scaled signs on one diagonal, smooth gains on the other: gives the
        // transform both sign structure and amplitude structure.
        fill_signs(&mut d1, rng);
        fill_normal(&mut d2, 1.0, rng);
        // Strong gains drive the tanh deep into saturation, so recovering
        // the class structure *requires* undoing the mixing — a linear
        // classifier on raw pixels cannot, an expressive hidden layer can.
        for x in &mut d2 {
            *x = 3.0 * (0.5 + x.abs());
        }
        let perm = Permutation::random(work_dim, rng);
        Self { work_dim, d1, d2, perm }
    }

    /// Applies the map to a latent vector already embedded in `work_dim`.
    fn apply(&self, z: &[f32], out: &mut [f32]) {
        debug_assert_eq!(z.len(), self.work_dim);
        let scaled: Vec<f32> = z.iter().zip(&self.d1).map(|(x, d)| x * d).collect();
        let mut buf = self.perm.apply(&scaled);
        fwht_normalized(&mut buf);
        for ((o, b), d) in out.iter_mut().zip(&buf).zip(&self.d2) {
            *o = (b * d).tanh();
        }
    }
}

/// Generates a synthetic dataset according to `spec`.
///
/// Deterministic: the same spec always produces the same dataset.
pub fn generate(spec: &SynthSpec) -> Dataset {
    assert!(spec.latent_dim <= spec.dim, "latent_dim must not exceed dim");
    assert!(spec.num_classes >= 2, "need at least two classes");
    let mut proto_rng = derived_rng(spec.seed, 0);
    let mut map_rng = derived_rng(spec.seed, 1);
    let mut sample_rng = derived_rng(spec.seed, 2);

    let map = StructuredMap::new(spec.dim, &mut map_rng);

    // Class prototypes in latent space, separated by construction.
    let mut prototypes = Matrix::zeros(spec.num_classes, spec.latent_dim);
    for c in 0..spec.num_classes {
        fill_normal(prototypes.row_mut(c), 1.0, &mut proto_rng);
    }

    let mut features = Matrix::zeros(spec.samples, spec.dim);
    let mut labels = Vec::with_capacity(spec.samples);
    let mut z = vec![0.0f32; map.work_dim];
    let mut out = vec![0.0f32; map.work_dim];
    for i in 0..spec.samples {
        let class = i % spec.num_classes;
        labels.push(class);
        // Latent sample: prototype + within-class noise, embedded into the
        // power-of-two working dimension (zeros elsewhere).
        z.iter_mut().for_each(|v| *v = 0.0);
        let proto = prototypes.row(class);
        for (j, slot) in z.iter_mut().take(spec.latent_dim).enumerate() {
            let mut noise = [0.0f32];
            fill_normal(&mut noise, spec.latent_noise, &mut sample_rng);
            *slot = proto[j] + noise[0];
        }
        map.apply(&z, &mut out);
        // Crop to the feature dimension and add pixel noise.
        let row = features.row_mut(i);
        row.copy_from_slice(&out[..spec.dim]);
        if spec.pixel_noise > 0.0 {
            let mut noise = vec![0.0f32; spec.dim];
            fill_normal(&mut noise, spec.pixel_noise, &mut sample_rng);
            for (x, n) in row.iter_mut().zip(&noise) {
                *x += n;
            }
        }
    }
    Dataset::new(features, labels, spec.num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SynthSpec { samples: 20, ..SynthSpec::cifar10_like(20, 7) };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthSpec::cifar10_like(10, 1));
        let b = generate(&SynthSpec::cifar10_like(10, 2));
        assert_ne!(a.features, b.features);
    }

    #[test]
    fn shapes_match_spec() {
        let d = generate(&SynthSpec::cifar10_like(30, 3));
        assert_eq!(d.features.shape(), (30, 1024));
        assert_eq!(d.num_classes, 10);
        let m = generate(&SynthSpec::mnist_like(15, 3));
        assert_eq!(m.dim(), 784);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = generate(&SynthSpec::cifar10_like(25, 4));
        assert_eq!(&d.labels[..12], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1]);
    }

    #[test]
    fn classes_are_separated_in_feature_space() {
        // Same-class samples should on average be closer than cross-class
        // samples — otherwise no model could learn anything. Uses a
        // moderate-noise spec so the separation is unambiguous.
        let spec =
            SynthSpec { latent_noise: 0.6, pixel_noise: 0.1, ..SynthSpec::cifar10_like(200, 5) };
        let d = generate(&spec);
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>().sqrt()
        };
        let mut same = (0.0f64, 0usize);
        let mut diff = (0.0f64, 0usize);
        for i in 0..60 {
            for j in (i + 1)..60 {
                let dd = dist(d.features.row(i), d.features.row(j)) as f64;
                if d.labels[i] == d.labels[j] {
                    same = (same.0 + dd, same.1 + 1);
                } else {
                    diff = (diff.0 + dd, diff.1 + 1);
                }
            }
        }
        let mean_same = same.0 / same.1 as f64;
        let mean_diff = diff.0 / diff.1 as f64;
        assert!(
            mean_same < mean_diff * 0.95,
            "classes not separated: same {mean_same:.3} vs diff {mean_diff:.3}"
        );
    }

    #[test]
    fn features_are_bounded_by_tanh_plus_noise() {
        let spec = SynthSpec::cifar10_like(20, 6);
        let d = generate(&spec);
        assert!(d.features.max_abs() < 1.0 + 6.0 * spec.pixel_noise);
    }
}
