//! Workload descriptors for the paper's linear-algebra benchmarks.
//!
//! Table 2 (dense/sparse square MM), Fig 4 (skewed MM) and Fig 6 (layer
//! characterization sweep) all iterate over matrix-multiplication problems;
//! this module centralises those problem definitions so every harness binary
//! and simulator agrees on the workloads.

use bfly_tensor::{Csr, Matrix, WorkspaceRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single matrix-multiplication problem `A (m x k) * B (k x n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatmulProblem {
    /// Rows of A / C.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B / C.
    pub n: usize,
}

impl MatmulProblem {
    /// A square `n x n x n` problem.
    pub fn square(n: usize) -> Self {
        Self { m: n, k: n, n }
    }

    /// Total multiply-add FLOPs (2mnk).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Bytes of the three f32 operands.
    pub fn bytes(&self) -> u64 {
        (4 * (self.m * self.k + self.k * self.n + self.m * self.n)) as u64
    }

    /// Skewness ratio `s = m / k` as defined in paper §3.2.
    pub fn skewness(&self) -> f64 {
        self.m as f64 / self.k as f64
    }

    /// Materialises random dense operands `(A, B)`.
    pub fn dense_operands(&self, rng: &mut WorkspaceRng) -> (Matrix, Matrix) {
        let a = Matrix::random_uniform(self.m, self.k, 1.0, rng);
        let b = Matrix::random_uniform(self.k, self.n, 1.0, rng);
        (a, b)
    }

    /// Materialises a sparse A (given density) and dense B.
    pub fn sparse_operands(&self, density: f64, rng: &mut WorkspaceRng) -> (Csr, Matrix) {
        let a = Csr::random(self.m, self.k, density, rng);
        let b = Matrix::random_uniform(self.k, self.n, 1.0, rng);
        (a, b)
    }
}

/// The skew sweep of Fig 4: problems with constant FLOP budget and aspect
/// ratio `s = m/k` swept over powers of four in `[4^-max_exp, 4^max_exp]`.
///
/// `base` is the square dimension at `s = 1`. For skew `s = 4^e` we set
/// `m = base * 2^e`, `k = base / 2^e` and keep `n = base`, so
/// `m * k * n = base^3` (and hence total FLOPs) stays constant while the
/// aspect ratio varies — isolating the shape effect, as §3.2 intends.
pub fn skew_sweep(base: usize, max_exp: i32) -> Vec<MatmulProblem> {
    assert!(base.is_power_of_two(), "skew sweep base must be a power of two");
    assert!(max_exp >= 0 && (1usize << max_exp) <= base, "skew exceeds base dimension");
    let mut out = Vec::new();
    for e in -max_exp..=max_exp {
        let (m, k) = if e >= 0 {
            (base << e as u32, base >> e as u32)
        } else {
            (base >> (-e) as u32, base << (-e) as u32)
        };
        out.push(MatmulProblem { m, k, n: base });
    }
    out
}

/// Square-size sweep `2^lo ..= 2^hi`, used by Figs 5-7.
pub fn square_sweep(lo: u32, hi: u32) -> Vec<MatmulProblem> {
    (lo..=hi).map(|e| MatmulProblem::square(1 << e)).collect()
}

/// Sparsity configurations from Table 2: 90 % and 99 % sparse.
pub const TABLE2_DENSITIES: [f64; 2] = [0.10, 0.01];

/// The square dimension used for Table 2's throughput comparison.
pub const TABLE2_DIM: usize = 2048;

/// Generates a random dense matrix with a target fraction of *zero* entries
/// ("sparsity"), kept in dense storage — used to test how dense kernels fare
/// on sparse data.
pub fn dense_with_sparsity(n: usize, sparsity: f64, rng: &mut WorkspaceRng) -> Matrix {
    assert!((0.0..=1.0).contains(&sparsity));
    Matrix::from_fn(
        n,
        n,
        |_, _| {
            if rng.gen_bool(sparsity) {
                0.0
            } else {
                rng.gen_range(-1.0f32..1.0)
            }
        },
    )
}

/// One piecewise-linear span of a [`TrafficTrace`]: the offered request
/// rate ramps from `start_rps` to `end_rps` over `duration_s` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSegment {
    /// Wall-clock length of the segment, seconds.
    pub duration_s: f64,
    /// Offered rate at the start of the segment, requests per second.
    pub start_rps: f64,
    /// Offered rate at the end of the segment, requests per second.
    pub end_rps: f64,
}

impl RateSegment {
    fn rate_at(&self, t: f64) -> f64 {
        let frac = (t / self.duration_s).clamp(0.0, 1.0);
        self.start_rps + (self.end_rps - self.start_rps) * frac
    }
}

/// A replayable request-rate profile for trace-driven load generation:
/// a sequence of piecewise-linear [`RateSegment`]s covering the run.
///
/// Traces describe *offered load over time* — the serving load generators
/// turn them into concrete arrival timestamps with a seeded RNG
/// ([`arrivals`] for Poisson, [`pareto_arrivals`] for heavy-tailed), so
/// the same trace + seed replays the identical arrival sequence on any
/// host.
///
/// [`arrivals`]: TrafficTrace::arrivals
/// [`pareto_arrivals`]: TrafficTrace::pareto_arrivals
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficTrace {
    /// The spans of the profile, played back to back.
    pub segments: Vec<RateSegment>,
}

impl TrafficTrace {
    /// A flat trace: `rps` held for `duration_s` seconds.
    pub fn constant(rps: f64, duration_s: f64) -> Self {
        Self { segments: vec![RateSegment { duration_s, start_rps: rps, end_rps: rps }] }
    }

    /// A diurnal profile: `cycles` sinusoidal day/night swings between
    /// `base_rps` (trough) and `peak_rps` (crest), each `period_s` seconds
    /// long, sampled into piecewise-linear segments.
    pub fn diurnal(base_rps: f64, peak_rps: f64, period_s: f64, cycles: usize) -> Self {
        assert!(cycles > 0, "diurnal trace needs at least one cycle");
        assert!(peak_rps >= base_rps, "diurnal peak must be at least the base rate");
        const STEPS: usize = 16;
        let mid = (base_rps + peak_rps) / 2.0;
        let amp = (peak_rps - base_rps) / 2.0;
        let rate = |step: usize| {
            let phase = step as f64 / STEPS as f64 * std::f64::consts::TAU;
            // Start at the trough so the trace opens at base_rps.
            mid - amp * phase.cos()
        };
        let mut segments = Vec::with_capacity(cycles * STEPS);
        for _ in 0..cycles {
            for step in 0..STEPS {
                segments.push(RateSegment {
                    duration_s: period_s / STEPS as f64,
                    start_rps: rate(step),
                    end_rps: rate(step + 1),
                });
            }
        }
        Self { segments }
    }

    /// A flash crowd: quiet at `base_rps`, then a sharp ramp to
    /// `spike_multiplier * base_rps` starting at `spike_at_s`, holding the
    /// spike for `hold_s`, then decaying back to base for the remainder of
    /// `duration_s`. The ramp itself takes a tenth of the hold.
    pub fn flash_crowd(
        base_rps: f64,
        spike_multiplier: f64,
        duration_s: f64,
        spike_at_s: f64,
        hold_s: f64,
    ) -> Self {
        assert!(spike_multiplier >= 1.0, "a flash crowd ramps up, not down");
        let ramp_s = (hold_s / 10.0).max(1e-3);
        let peak = base_rps * spike_multiplier;
        let tail = duration_s - spike_at_s - ramp_s - hold_s - ramp_s;
        assert!(tail >= 0.0, "flash crowd does not fit inside the trace duration");
        let mut segments = vec![
            RateSegment { duration_s: spike_at_s, start_rps: base_rps, end_rps: base_rps },
            RateSegment { duration_s: ramp_s, start_rps: base_rps, end_rps: peak },
            RateSegment { duration_s: hold_s, start_rps: peak, end_rps: peak },
            RateSegment { duration_s: ramp_s, start_rps: peak, end_rps: base_rps },
        ];
        if tail > 0.0 {
            segments.push(RateSegment { duration_s: tail, start_rps: base_rps, end_rps: base_rps });
        }
        Self { segments }
    }

    /// Total wall-clock length of the trace, seconds.
    pub fn duration_s(&self) -> f64 {
        self.segments.iter().map(|s| s.duration_s).sum()
    }

    /// The offered rate at time `t_s` into the trace (clamped to the ends).
    pub fn rate_at(&self, t_s: f64) -> f64 {
        let mut t = t_s.max(0.0);
        for seg in &self.segments {
            if t <= seg.duration_s {
                return seg.rate_at(t);
            }
            t -= seg.duration_s;
        }
        self.segments.last().map_or(0.0, |s| s.end_rps)
    }

    /// The highest instantaneous rate anywhere in the trace.
    pub fn peak_rps(&self) -> f64 {
        self.segments.iter().map(|s| s.start_rps.max(s.end_rps)).fold(0.0, f64::max)
    }

    /// Expected number of requests the whole trace offers (the integral of
    /// the rate profile).
    pub fn expected_requests(&self) -> f64 {
        self.segments.iter().map(|s| s.duration_s * (s.start_rps + s.end_rps) / 2.0).sum()
    }

    /// The same shape at `factor` times every rate — how benches calibrate
    /// a template trace against a measured capacity.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "trace scale factor must be positive");
        Self {
            segments: self
                .segments
                .iter()
                .map(|s| RateSegment {
                    duration_s: s.duration_s,
                    start_rps: s.start_rps * factor,
                    end_rps: s.end_rps * factor,
                })
                .collect(),
        }
    }

    /// Panics unless the trace is well-formed: at least one segment, every
    /// duration positive and finite, every rate finite and non-negative.
    pub fn validate(&self) {
        assert!(!self.segments.is_empty(), "a traffic trace needs at least one segment");
        for seg in &self.segments {
            assert!(
                seg.duration_s.is_finite() && seg.duration_s > 0.0,
                "segment durations must be positive"
            );
            assert!(
                seg.start_rps.is_finite()
                    && seg.end_rps.is_finite()
                    && seg.start_rps >= 0.0
                    && seg.end_rps >= 0.0,
                "segment rates must be finite and non-negative"
            );
        }
    }

    /// Arrival timestamps (seconds from trace start) for a non-homogeneous
    /// Poisson process following the trace's rate profile, via
    /// Lewis-Shedler thinning against the peak rate. Seed the RNG to make
    /// the trace replayable.
    pub fn arrivals<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        self.validate();
        let horizon = self.duration_s();
        let lambda_max = self.peak_rps();
        if lambda_max <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.expected_requests().ceil() as usize);
        let mut t = 0.0f64;
        loop {
            // Candidate gap from the homogeneous envelope process.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / lambda_max;
            if t >= horizon {
                return out;
            }
            if rng.gen_range(0.0..1.0) * lambda_max < self.rate_at(t) {
                out.push(t);
            }
        }
    }

    /// Heavy-tailed arrivals: inter-arrival gaps drawn from a Pareto
    /// distribution with shape `alpha` (> 1), scaled so the *mean* gap
    /// tracks the trace's instantaneous rate — bursty flash-crowd-like
    /// clumping with the same offered load as [`arrivals`].
    ///
    /// [`arrivals`]: TrafficTrace::arrivals
    pub fn pareto_arrivals<R: Rng>(&self, alpha: f64, rng: &mut R) -> Vec<f64> {
        self.validate();
        assert!(alpha > 1.0, "Pareto arrivals need alpha > 1 for a finite mean gap");
        let horizon = self.duration_s();
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            let rate = self.rate_at(t).max(f64::EPSILON);
            // Pareto(alpha, xm) has mean alpha * xm / (alpha - 1); pick xm
            // so the mean gap is 1 / rate.
            let xm = (alpha - 1.0) / (alpha * rate);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += xm / u.powf(1.0 / alpha);
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_tensor::seeded_rng;

    #[test]
    fn square_problem_flops() {
        let p = MatmulProblem::square(64);
        assert_eq!(p.flops(), 2.0 * 64.0 * 64.0 * 64.0);
        assert_eq!(p.skewness(), 1.0);
    }

    #[test]
    fn skew_sweep_holds_flops_constant() {
        let probs = skew_sweep(256, 6);
        let base_flops = MatmulProblem::square(256).flops();
        for p in &probs {
            assert_eq!(p.flops(), base_flops, "problem {p:?} changed FLOPs");
        }
    }

    #[test]
    fn skew_sweep_covers_requested_ratios() {
        let probs = skew_sweep(256, 4);
        let ratios: Vec<f64> = probs.iter().map(|p| p.skewness()).collect();
        assert!(ratios.contains(&1.0));
        assert!(ratios.iter().any(|&r| r >= 256.0));
        assert!(ratios.iter().any(|&r| r <= 1.0 / 256.0));
        // Monotonically increasing sweep.
        for w in ratios.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn square_sweep_is_powers_of_two() {
        let probs = square_sweep(3, 6);
        let dims: Vec<usize> = probs.iter().map(|p| p.n).collect();
        assert_eq!(dims, vec![8, 16, 32, 64]);
    }

    #[test]
    fn sparse_operands_match_density() {
        let mut rng = seeded_rng(1);
        let p = MatmulProblem::square(128);
        let (a, b) = p.sparse_operands(0.01, &mut rng);
        assert_eq!(a.shape(), (128, 128));
        assert_eq!(b.shape(), (128, 128));
        assert!((a.density() - 0.01).abs() < 0.01);
    }

    #[test]
    fn constant_trace_offers_the_flat_rate() {
        let trace = TrafficTrace::constant(100.0, 4.0);
        trace.validate();
        assert_eq!(trace.duration_s(), 4.0);
        assert_eq!(trace.rate_at(0.0), 100.0);
        assert_eq!(trace.rate_at(3.9), 100.0);
        assert_eq!(trace.peak_rps(), 100.0);
        assert!((trace.expected_requests() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn flash_crowd_spikes_then_returns_to_base() {
        let trace = TrafficTrace::flash_crowd(50.0, 4.0, 10.0, 3.0, 2.0);
        trace.validate();
        assert!((trace.duration_s() - 10.0).abs() < 1e-9);
        assert_eq!(trace.rate_at(1.0), 50.0, "quiet before the spike");
        assert_eq!(trace.rate_at(4.0), 200.0, "holding the spike");
        assert_eq!(trace.rate_at(9.9), 50.0, "back to base after the decay");
        assert_eq!(trace.peak_rps(), 200.0);
    }

    #[test]
    fn diurnal_trace_swings_between_base_and_peak() {
        let trace = TrafficTrace::diurnal(10.0, 90.0, 8.0, 2);
        trace.validate();
        assert!((trace.duration_s() - 16.0).abs() < 1e-9);
        assert!((trace.rate_at(0.0) - 10.0).abs() < 1e-9, "opens at the trough");
        assert!((trace.rate_at(4.0) - 90.0).abs() < 1e-6, "crests mid-cycle");
        assert!(trace.peak_rps() <= 90.0 + 1e-9);
    }

    #[test]
    fn scaled_trace_multiplies_every_rate() {
        let trace = TrafficTrace::flash_crowd(50.0, 3.0, 10.0, 3.0, 2.0).scaled(2.0);
        assert_eq!(trace.rate_at(1.0), 100.0);
        assert_eq!(trace.peak_rps(), 300.0);
        assert!((trace.duration_s() - 10.0).abs() < 1e-9, "scaling never stretches time");
    }

    #[test]
    fn seeded_arrivals_replay_and_track_the_offered_load() {
        let trace = TrafficTrace::constant(1000.0, 2.0);
        let a = trace.arrivals(&mut seeded_rng(7));
        let b = trace.arrivals(&mut seeded_rng(7));
        assert_eq!(a, b, "same trace + seed must replay bit-identically");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals are sorted");
        assert!(a.iter().all(|&t| (0.0..2.0).contains(&t)));
        let expected = trace.expected_requests();
        assert!(
            (a.len() as f64 - expected).abs() < expected * 0.2,
            "Poisson count {} strays too far from the offered {expected}",
            a.len()
        );
    }

    #[test]
    fn thinned_arrivals_follow_the_spike() {
        let trace = TrafficTrace::flash_crowd(200.0, 5.0, 4.0, 1.0, 1.0);
        let arrivals = trace.arrivals(&mut seeded_rng(11));
        let quiet = arrivals.iter().filter(|&&t| t < 1.0).count();
        let spike = arrivals.iter().filter(|&&t| (1.1..2.1).contains(&t)).count();
        assert!(
            spike as f64 > quiet as f64 * 3.0,
            "spike window saw {spike} arrivals vs {quiet} in an equal quiet window"
        );
    }

    #[test]
    fn pareto_arrivals_are_heavier_tailed_than_poisson() {
        let trace = TrafficTrace::constant(2000.0, 2.0);
        let pareto = trace.pareto_arrivals(1.5, &mut seeded_rng(3));
        let poisson = trace.arrivals(&mut seeded_rng(3));
        let expected = trace.expected_requests();
        assert!(
            (pareto.len() as f64 - expected).abs() < expected * 0.35,
            "heavy-tailed count {} strays too far from the offered {expected}",
            pareto.len()
        );
        let max_gap = |ts: &[f64]| ts.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
        assert!(
            max_gap(&pareto) > max_gap(&poisson),
            "Pareto gaps should include lulls Poisson almost never produces"
        );
    }

    #[test]
    fn dense_with_sparsity_hits_target() {
        let mut rng = seeded_rng(2);
        let m = dense_with_sparsity(128, 0.9, &mut rng);
        let zeros = m.len() - m.count_nonzero(0.0);
        let frac = zeros as f64 / m.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "zero fraction {frac}");
    }
}
