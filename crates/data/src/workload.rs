//! Workload descriptors for the paper's linear-algebra benchmarks.
//!
//! Table 2 (dense/sparse square MM), Fig 4 (skewed MM) and Fig 6 (layer
//! characterization sweep) all iterate over matrix-multiplication problems;
//! this module centralises those problem definitions so every harness binary
//! and simulator agrees on the workloads.

use bfly_tensor::{Csr, Matrix, WorkspaceRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single matrix-multiplication problem `A (m x k) * B (k x n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatmulProblem {
    /// Rows of A / C.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B / C.
    pub n: usize,
}

impl MatmulProblem {
    /// A square `n x n x n` problem.
    pub fn square(n: usize) -> Self {
        Self { m: n, k: n, n }
    }

    /// Total multiply-add FLOPs (2mnk).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Bytes of the three f32 operands.
    pub fn bytes(&self) -> u64 {
        (4 * (self.m * self.k + self.k * self.n + self.m * self.n)) as u64
    }

    /// Skewness ratio `s = m / k` as defined in paper §3.2.
    pub fn skewness(&self) -> f64 {
        self.m as f64 / self.k as f64
    }

    /// Materialises random dense operands `(A, B)`.
    pub fn dense_operands(&self, rng: &mut WorkspaceRng) -> (Matrix, Matrix) {
        let a = Matrix::random_uniform(self.m, self.k, 1.0, rng);
        let b = Matrix::random_uniform(self.k, self.n, 1.0, rng);
        (a, b)
    }

    /// Materialises a sparse A (given density) and dense B.
    pub fn sparse_operands(&self, density: f64, rng: &mut WorkspaceRng) -> (Csr, Matrix) {
        let a = Csr::random(self.m, self.k, density, rng);
        let b = Matrix::random_uniform(self.k, self.n, 1.0, rng);
        (a, b)
    }
}

/// The skew sweep of Fig 4: problems with constant FLOP budget and aspect
/// ratio `s = m/k` swept over powers of four in `[4^-max_exp, 4^max_exp]`.
///
/// `base` is the square dimension at `s = 1`. For skew `s = 4^e` we set
/// `m = base * 2^e`, `k = base / 2^e` and keep `n = base`, so
/// `m * k * n = base^3` (and hence total FLOPs) stays constant while the
/// aspect ratio varies — isolating the shape effect, as §3.2 intends.
pub fn skew_sweep(base: usize, max_exp: i32) -> Vec<MatmulProblem> {
    assert!(base.is_power_of_two(), "skew sweep base must be a power of two");
    assert!(max_exp >= 0 && (1usize << max_exp) <= base, "skew exceeds base dimension");
    let mut out = Vec::new();
    for e in -max_exp..=max_exp {
        let (m, k) = if e >= 0 {
            (base << e as u32, base >> e as u32)
        } else {
            (base >> (-e) as u32, base << (-e) as u32)
        };
        out.push(MatmulProblem { m, k, n: base });
    }
    out
}

/// Square-size sweep `2^lo ..= 2^hi`, used by Figs 5-7.
pub fn square_sweep(lo: u32, hi: u32) -> Vec<MatmulProblem> {
    (lo..=hi).map(|e| MatmulProblem::square(1 << e)).collect()
}

/// Sparsity configurations from Table 2: 90 % and 99 % sparse.
pub const TABLE2_DENSITIES: [f64; 2] = [0.10, 0.01];

/// The square dimension used for Table 2's throughput comparison.
pub const TABLE2_DIM: usize = 2048;

/// Generates a random dense matrix with a target fraction of *zero* entries
/// ("sparsity"), kept in dense storage — used to test how dense kernels fare
/// on sparse data.
pub fn dense_with_sparsity(n: usize, sparsity: f64, rng: &mut WorkspaceRng) -> Matrix {
    assert!((0.0..=1.0).contains(&sparsity));
    Matrix::from_fn(
        n,
        n,
        |_, _| {
            if rng.gen_bool(sparsity) {
                0.0
            } else {
                rng.gen_range(-1.0f32..1.0)
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_tensor::seeded_rng;

    #[test]
    fn square_problem_flops() {
        let p = MatmulProblem::square(64);
        assert_eq!(p.flops(), 2.0 * 64.0 * 64.0 * 64.0);
        assert_eq!(p.skewness(), 1.0);
    }

    #[test]
    fn skew_sweep_holds_flops_constant() {
        let probs = skew_sweep(256, 6);
        let base_flops = MatmulProblem::square(256).flops();
        for p in &probs {
            assert_eq!(p.flops(), base_flops, "problem {p:?} changed FLOPs");
        }
    }

    #[test]
    fn skew_sweep_covers_requested_ratios() {
        let probs = skew_sweep(256, 4);
        let ratios: Vec<f64> = probs.iter().map(|p| p.skewness()).collect();
        assert!(ratios.contains(&1.0));
        assert!(ratios.iter().any(|&r| r >= 256.0));
        assert!(ratios.iter().any(|&r| r <= 1.0 / 256.0));
        // Monotonically increasing sweep.
        for w in ratios.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn square_sweep_is_powers_of_two() {
        let probs = square_sweep(3, 6);
        let dims: Vec<usize> = probs.iter().map(|p| p.n).collect();
        assert_eq!(dims, vec![8, 16, 32, 64]);
    }

    #[test]
    fn sparse_operands_match_density() {
        let mut rng = seeded_rng(1);
        let p = MatmulProblem::square(128);
        let (a, b) = p.sparse_operands(0.01, &mut rng);
        assert_eq!(a.shape(), (128, 128));
        assert_eq!(b.shape(), (128, 128));
        assert!((a.density() - 0.01).abs() < 0.01);
    }

    #[test]
    fn dense_with_sparsity_hits_target() {
        let mut rng = seeded_rng(2);
        let m = dense_with_sparsity(128, 0.9, &mut rng);
        let zeros = m.len() - m.count_nonzero(0.0);
        let frac = zeros as f64 / m.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "zero fraction {frac}");
    }
}
