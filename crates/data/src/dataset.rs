//! In-memory classification datasets and train/val/test splitting.

use bfly_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled classification dataset. Each row of `features` is one sample.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Sample features, one row per sample.
    pub features: Matrix,
    /// Class label per sample, in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shapes and label ranges.
    ///
    /// # Panics
    /// Panics if `labels.len() != features.rows()` or any label is out of
    /// range.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.rows(), labels.len(), "feature/label count mismatch");
        assert!(labels.iter().all(|&l| l < num_classes), "label out of range");
        Self { features, labels, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Selects samples by index into a new dataset.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut features = Matrix::zeros(indices.len(), self.dim());
        let mut labels = Vec::with_capacity(indices.len());
        for (dst, &src) in indices.iter().enumerate() {
            features.row_mut(dst).copy_from_slice(self.features.row(src));
            labels.push(self.labels[src]);
        }
        Dataset { features, labels, num_classes: self.num_classes }
    }

    /// Randomly shuffles the samples in place (features and labels together).
    pub fn shuffle(&mut self, rng: &mut impl Rng) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        *self = self.select(&order);
    }

    /// Standardises features to zero mean / unit variance per dimension,
    /// computed over this dataset. Returns the (mean, std) used, so the same
    /// statistics can be applied to held-out splits via [`Dataset::standardize_with`].
    pub fn standardize(&mut self) -> (Vec<f32>, Vec<f32>) {
        let n = self.len().max(1) as f64;
        let dim = self.dim();
        let mut mean = vec![0f64; dim];
        for r in 0..self.len() {
            for (m, &x) in mean.iter_mut().zip(self.features.row(r)) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0f64; dim];
        for r in 0..self.len() {
            for ((v, &m), &x) in var.iter_mut().zip(&mean).zip(self.features.row(r)) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let mean: Vec<f32> = mean.into_iter().map(|m| m as f32).collect();
        let std: Vec<f32> = var.into_iter().map(|v| ((v / n).sqrt().max(1e-6)) as f32).collect();
        self.standardize_with(&mean, &std);
        (mean, std)
    }

    /// Applies a precomputed per-dimension standardisation.
    pub fn standardize_with(&mut self, mean: &[f32], std: &[f32]) {
        assert_eq!(mean.len(), self.dim());
        assert_eq!(std.len(), self.dim());
        for r in 0..self.len() {
            for ((x, &m), &s) in self.features.row_mut(r).iter_mut().zip(mean).zip(std) {
                *x = (*x - m) / s;
            }
        }
    }
}

/// A train/validation/test partition of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training samples.
    pub train: Dataset,
    /// Validation samples (the paper holds out 15 % of the training set).
    pub val: Dataset,
    /// Test samples.
    pub test: Dataset,
}

/// Splits a dataset into train/val/test.
///
/// `val_fraction` is taken from the *training* portion after removing the
/// test samples, following Table 3 ("validation set: 15 % of training set").
pub fn split(
    mut data: Dataset,
    test_fraction: f64,
    val_fraction: f64,
    rng: &mut impl Rng,
) -> Split {
    assert!((0.0..1.0).contains(&test_fraction));
    assert!((0.0..1.0).contains(&val_fraction));
    data.shuffle(rng);
    let n = data.len();
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let n_train_total = n - n_test;
    let n_val = ((n_train_total as f64) * val_fraction).round() as usize;
    let idx: Vec<usize> = (0..n).collect();
    let test = data.select(&idx[0..n_test]);
    let val = data.select(&idx[n_test..n_test + n_val]);
    let train = data.select(&idx[n_test + n_val..]);
    Split { train, val, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_tensor::seeded_rng;

    fn toy(n: usize, dim: usize) -> Dataset {
        let features = Matrix::from_fn(n, dim, |r, c| (r * dim + c) as f32);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(features, labels, 3)
    }

    #[test]
    fn select_pairs_features_with_labels() {
        let d = toy(10, 4);
        let s = d.select(&[3, 7]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![0, 1]);
        assert_eq!(s.features.row(0), d.features.row(3));
    }

    #[test]
    fn split_fractions_are_respected() {
        let d = toy(100, 2);
        let mut rng = seeded_rng(1);
        let s = split(d, 0.2, 0.15, &mut rng);
        assert_eq!(s.test.len(), 20);
        assert_eq!(s.val.len(), 12); // 15% of 80
        assert_eq!(s.train.len(), 68);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy(57, 3);
        let mut rng = seeded_rng(2);
        let s = split(d, 0.1, 0.15, &mut rng);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 57);
    }

    #[test]
    fn shuffle_keeps_feature_label_pairing() {
        let mut d = toy(20, 2);
        let pairs_before: Vec<(f32, usize)> =
            (0..20).map(|i| (d.features[(i, 0)], d.labels[i])).collect();
        let mut rng = seeded_rng(3);
        d.shuffle(&mut rng);
        for i in 0..20 {
            let f = d.features[(i, 0)];
            let l = d.labels[i];
            assert!(pairs_before.contains(&(f, l)), "pairing broken at {i}");
        }
    }

    #[test]
    fn standardize_yields_zero_mean_unit_var() {
        let mut rng = seeded_rng(4);
        let features = Matrix::random_uniform(200, 5, 3.0, &mut rng);
        let mut d = Dataset::new(features, vec![0; 200], 1);
        d.standardize();
        for c in 0..5 {
            let col = d.features.col(c);
            let mean: f32 = col.iter().sum::<f32>() / 200.0;
            let var: f32 = col.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 200.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let _ = Dataset::new(Matrix::zeros(2, 2), vec![0, 5], 3);
    }
}
