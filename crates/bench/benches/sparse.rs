//! Criterion benchmarks of sparse kernels: CSR vs COO SpMM (paper Note 2:
//! "on both GPU and IPU, CSR shows better performance") and the
//! sparsity-level scaling that underlies Table 2's sparse columns.

use bfly_tensor::{seeded_rng, Csr, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_csr_vs_coo(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_vs_coo_spmm");
    let n = 1024usize;
    for &density in &[0.01f64, 0.10] {
        let mut rng = seeded_rng(1);
        let csr = Csr::random(n, n, density, &mut rng);
        let coo = csr.to_coo();
        let dense = Matrix::random_uniform(n, 64, 1.0, &mut rng);
        let label = format!("{:.0}%_sparse", (1.0 - density) * 100.0);
        group.throughput(Throughput::Elements(csr.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("csr", &label), &label, |b, _| {
            b.iter(|| csr.spmm(&dense))
        });
        group.bench_with_input(BenchmarkId::new("coo", &label), &label, |b, _| {
            b.iter(|| coo.spmm(&dense))
        });
    }
    group.finish();
}

fn bench_sparse_vs_dense_crossover(c: &mut Criterion) {
    // Where does exploiting sparsity beat the dense kernel on the host?
    let mut group = c.benchmark_group("sparse_vs_dense_crossover");
    let n = 512usize;
    for &density in &[0.01f64, 0.05, 0.25] {
        let mut rng = seeded_rng(2);
        let csr = Csr::random(n, n, density, &mut rng);
        let as_dense = csr.to_dense();
        let rhs = Matrix::random_uniform(n, n, 1.0, &mut rng);
        let label = format!("density_{density}");
        group.bench_with_input(BenchmarkId::new("spmm", &label), &label, |b, _| {
            b.iter(|| csr.spmm(&rhs))
        });
        group.bench_with_input(BenchmarkId::new("dense_mm", &label), &label, |b, _| {
            b.iter(|| bfly_tensor::matmul(&as_dense, &rhs))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_csr_vs_coo, bench_sparse_vs_dense_crossover
}
criterion_main!(benches);
