//! Criterion benchmarks of the three dense matmul kernel tiers (the host
//! analogues of Table 2's naive / blocked / library tiers).

use bfly_tensor::matmul::{matmul, matmul_blocked, matmul_naive};
use bfly_tensor::{seeded_rng, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_matmul_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_tiers");
    for &n in &[128usize, 512] {
        let mut rng = seeded_rng(1);
        let a = Matrix::random_uniform(n, n, 1.0, &mut rng);
        let b = Matrix::random_uniform(n, n, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| matmul_naive(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| matmul_blocked(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bch, _| {
            bch.iter(|| matmul(&a, &b))
        });
    }
    group.finish();
}

fn bench_skewed_shapes(c: &mut Criterion) {
    // Host-side analogue of Fig 4: same FLOPs, different aspect ratios.
    let mut group = c.benchmark_group("matmul_skew");
    let base = 256usize;
    for &(m, k) in &[(base, base), (base * 4, base / 4), (base / 4, base * 4)] {
        let mut rng = seeded_rng(2);
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, base, 1.0, &mut rng);
        let label = format!("{m}x{k}x{base}");
        group.bench_with_input(BenchmarkId::new("parallel", &label), &label, |bch, _| {
            bch.iter(|| matmul(&a, &b))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_matmul_tiers, bench_skewed_shapes
}
criterion_main!(benches);
