//! Wall-clock Criterion benchmarks of the butterfly kernels themselves:
//! the O(n log n) butterfly apply versus the O(n^2) dense product it
//! replaces, plus the pixelfly block-sparse product and a full training
//! step of the butterfly layer.

use bfly_bench::legacy::{legacy_backward, legacy_forward, LegacyButterfly};
use bfly_core::{
    flat_butterfly_mask, fused_backward, fused_forward_train, BlockSparseMatrix, Butterfly,
};
use bfly_tensor::{matmul::matmul_a_bt, seeded_rng, Matrix, Scratch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_butterfly_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("butterfly_vs_dense_apply");
    for &n in &[256usize, 1024, 4096] {
        let mut rng = seeded_rng(1);
        let butterfly = Butterfly::random(n, &mut rng);
        let dense = Matrix::random_uniform(n, n, 1.0, &mut rng);
        let batch = Matrix::random_uniform(16, n, 1.0, &mut rng);
        group.throughput(Throughput::Elements((16 * n) as u64));
        group.bench_with_input(BenchmarkId::new("butterfly", n), &n, |b, _| {
            b.iter(|| butterfly.apply_batch(&batch))
        });
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| matmul_a_bt(&batch, &dense))
        });
    }
    group.finish();
}

fn bench_block_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("pixelfly_block_sparse");
    for &n in &[1024usize, 4096] {
        let mut rng = seeded_rng(2);
        let block = 32;
        let mask = flat_butterfly_mask(n / block, 8);
        let w = BlockSparseMatrix::random(n, n, block, mask, &mut rng);
        let x = Matrix::random_uniform(16, n, 1.0, &mut rng);
        group.throughput(Throughput::Elements(w.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("block_spmm", n), &n, |b, _| {
            b.iter(|| w.matmul_batch(&x))
        });
    }
    group.finish();
}

fn bench_butterfly_train_step(c: &mut Criterion) {
    use bfly_core::ButterflyLayer;
    use bfly_nn::Layer;
    let mut group = c.benchmark_group("butterfly_train_step");
    let n = 1024usize;
    let mut rng = seeded_rng(3);
    let mut layer = ButterflyLayer::new(n, n, &mut rng);
    let x = Matrix::random_uniform(50, n, 1.0, &mut rng);
    group.bench_with_input(BenchmarkId::new("fwd_bwd", n), &n, |b, _| {
        b.iter(|| {
            let y = layer.forward(&x, true);
            layer.zero_grad();
            layer.backward(&y)
        })
    });
    group.finish();
}

/// The fused stage-major kernels against the pre-fusion reference path
/// (`bfly_bench::legacy`) on identical inputs: training forward with stage
/// caching, and the backward pass. `bench_kernels` (the binary) covers the
/// full (n, batch) grid; this group keeps one representative point under
/// Criterion's statistics.
fn bench_fused_vs_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_vs_legacy");
    let n = 1024usize;
    let batch = 32usize;
    let mut rng = seeded_rng(4);
    let b = Butterfly::random(n, &mut rng);
    let mut lb = LegacyButterfly::from_butterfly(&b);
    let x = Matrix::random_uniform(batch, n, 1.0, &mut rng);
    let bias = vec![0.01f32; n];
    group.throughput(Throughput::Elements((batch * n) as u64));
    group.bench_with_input(BenchmarkId::new("forward_train_legacy", n), &n, |bch, _| {
        bch.iter(|| legacy_forward(&mut lb, &x, &bias, n, true))
    });
    let mut scratch = Scratch::new();
    let mut arena = Vec::new();
    group.bench_with_input(BenchmarkId::new("forward_train_fused", n), &n, |bch, _| {
        bch.iter(|| fused_forward_train(&x, &b.perm, &b.factors, &bias, &mut arena, &mut scratch))
    });
    let (y, cache) = legacy_forward(&mut lb, &x, &bias, n, true);
    let _ = fused_forward_train(&x, &b.perm, &b.factors, &bias, &mut arena, &mut scratch);
    let mut legacy_gt: Vec<Vec<f32>> =
        b.factors.iter().map(|f| vec![0.0; f.twiddles.len()]).collect();
    group.bench_with_input(BenchmarkId::new("backward_legacy", n), &n, |bch, _| {
        bch.iter(|| legacy_backward(&lb, &y, &cache, n, &mut legacy_gt))
    });
    let mut fused_gt: Vec<Vec<f32>> =
        b.factors.iter().map(|f| vec![0.0; f.twiddles.len()]).collect();
    group.bench_with_input(BenchmarkId::new("backward_fused", n), &n, |bch, _| {
        bch.iter(|| {
            fused_backward(&y, &b.perm, &b.factors, &arena, n, |s, flat| {
                for (acc, v) in fused_gt[s].iter_mut().zip(flat) {
                    *acc += v;
                }
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_butterfly_vs_dense, bench_block_sparse, bench_butterfly_train_step,
        bench_fused_vs_legacy
}
criterion_main!(benches);
