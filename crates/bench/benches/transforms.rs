//! Criterion benchmarks of the fast transforms (FFT, FWHT) against their
//! dense-matrix equivalents — the O(n log n) vs O(n^2) gap that butterfly
//! factorization generalises.

use bfly_tensor::fft::{dft_matrix, fft_real};
use bfly_tensor::fwht::{fwht_in_place, hadamard_matrix};
use bfly_tensor::{matvec, seeded_rng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_vs_dense_dft");
    for &n in &[256usize, 1024] {
        let mut rng = seeded_rng(1);
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (dft_re, _) = dft_matrix(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fft", n), &n, |b, _| b.iter(|| fft_real(&x)));
        group.bench_with_input(BenchmarkId::new("dense_re_part", n), &n, |b, _| {
            b.iter(|| matvec(&dft_re, &x))
        });
    }
    group.finish();
}

fn bench_fwht(c: &mut Criterion) {
    let mut group = c.benchmark_group("fwht_vs_dense_hadamard");
    for &n in &[256usize, 1024, 4096] {
        let mut rng = seeded_rng(2);
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fwht", n), &n, |b, _| {
            b.iter(|| {
                let mut y = x.clone();
                fwht_in_place(&mut y);
                y
            })
        });
        if n <= 1024 {
            let h = hadamard_matrix(n);
            group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
                b.iter(|| matvec(&h, &x))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fft, bench_fwht
}
criterion_main!(benches);
