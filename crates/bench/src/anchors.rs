//! Values the paper reports, kept in one place so every harness binary can
//! print paper-vs-measured side by side and the calibration tests can check
//! the model shapes.

/// One Table 2 entry: implementation tier and its reported GFLOP/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Anchor {
    /// Tier label as printed in the paper.
    pub label: &'static str,
    /// Reported throughput in GFLOP/s (dense-equivalent for sparse tiers).
    pub gflops: f64,
}

/// Table 2, dense columns.
pub const TABLE2_DENSE: [Table2Anchor; 10] = [
    Table2Anchor { label: "GPU naive", gflops: 1091.0 },
    Table2Anchor { label: "GPU shmem", gflops: 2076.0 },
    Table2Anchor { label: "GPU cublas (FP32)", gflops: 9722.0 },
    Table2Anchor { label: "GPU cublas (TF32)", gflops: 59312.0 },
    Table2Anchor { label: "IPU naive", gflops: 525.0 },
    Table2Anchor { label: "IPU blocked", gflops: 93.0 },
    Table2Anchor { label: "IPU poplin", gflops: 44219.0 },
    Table2Anchor { label: "GPU PyTorch (FP32)", gflops: 9286.0 },
    Table2Anchor { label: "GPU PyTorch (TF32)", gflops: 58146.0 },
    Table2Anchor { label: "IPU PopTorch", gflops: 1677.0 },
];

/// Table 2, sparse columns (dense-equivalent GFLOP/s).
pub const TABLE2_SPARSE: [Table2Anchor; 4] = [
    Table2Anchor { label: "GPU cusparse 99%", gflops: 93215.0 },
    Table2Anchor { label: "GPU cusparse 90%", gflops: 10817.0 },
    Table2Anchor { label: "IPU popsparse 99%", gflops: 76231.0 },
    Table2Anchor { label: "IPU popsparse 90%", gflops: 22845.0 },
];

/// Device peaks quoted in Table 2's caption (GFLOP/s).
pub const GPU_FP32_PEAK: f64 = 10_300.0;
/// TF32 tensor-core peak (GFLOP/s).
pub const GPU_TF32_PEAK: f64 = 82_000.0;
/// IPU FP32 peak (GFLOP/s).
pub const IPU_PEAK: f64 = 62_500.0;

/// Fig 6 headline numbers (paper §4.1).
pub mod fig6 {
    /// GPU break-even exponent: butterfly beats Linear above `N = 2^11`.
    pub const GPU_BREAK_EVEN_EXP: u32 = 11;
    /// IPU break-even exponent: `N = 2^10`.
    pub const IPU_BREAK_EVEN_EXP: u32 = 10;
    /// Worst GPU slowdown of butterfly vs Linear.
    pub const GPU_WORST_BUTTERFLY: f64 = 14.45;
    /// Worst GPU slowdown of pixelfly vs Linear.
    pub const GPU_WORST_PIXELFLY: f64 = 8.8;
    /// Worst IPU slowdown of butterfly vs Linear.
    pub const IPU_WORST_BUTTERFLY: f64 = 1.4;
    /// Worst IPU slowdown of pixelfly vs Linear.
    pub const IPU_WORST_PIXELFLY: f64 = 1.03;
    /// Max IPU speedup of butterfly over Linear (§4.1; the abstract swaps
    /// the two numbers — we follow §4.1).
    pub const IPU_MAX_BUTTERFLY_SPEEDUP: f64 = 1.6;
    /// Max IPU speedup of pixelfly over Linear.
    pub const IPU_MAX_PIXELFLY_SPEEDUP: f64 = 1.3;
}

/// One Table 4 row as reported by the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Anchor {
    /// Method label.
    pub method: &'static str,
    /// Reported parameter count.
    pub n_params: u64,
    /// Accuracy % on GPU with tensor cores.
    pub acc_gpu_tc: f64,
    /// Accuracy % on GPU without tensor cores.
    pub acc_gpu: f64,
    /// Accuracy % on IPU.
    pub acc_ipu: f64,
    /// Training time (s) on GPU with tensor cores.
    pub time_gpu_tc: f64,
    /// Training time (s) on GPU without tensor cores.
    pub time_gpu: f64,
    /// Training time (s) on IPU.
    pub time_ipu: f64,
}

/// Table 4 (SHL on CIFAR-10) as reported.
pub const TABLE4: [Table4Anchor; 6] = [
    Table4Anchor {
        method: "Baseline",
        n_params: 1_059_850,
        acc_gpu_tc: 43.94,
        acc_gpu: 43.4,
        acc_ipu: 44.7,
        time_gpu_tc: 50.43,
        time_gpu: 49.46,
        time_ipu: 24.69,
    },
    Table4Anchor {
        method: "Butterfly",
        n_params: 16_390,
        acc_gpu_tc: 42.27,
        acc_gpu: 40.75,
        acc_ipu: 41.13,
        time_gpu_tc: 61.93,
        time_gpu: 61.46,
        time_ipu: 37.73,
    },
    Table4Anchor {
        method: "Fastfood",
        n_params: 14_346,
        acc_gpu_tc: 38.64,
        acc_gpu: 37.94,
        acc_ipu: 37.68,
        time_gpu_tc: 53.55,
        time_gpu: 51.15,
        time_ipu: 60.70,
    },
    Table4Anchor {
        method: "Circulant",
        n_params: 12_298,
        acc_gpu_tc: 28.74,
        acc_gpu: 29.21,
        acc_ipu: 28.40,
        time_gpu_tc: 54.26,
        time_gpu: 53.92,
        time_ipu: 21.82,
    },
    Table4Anchor {
        method: "Low-rank",
        n_params: 13_322,
        acc_gpu_tc: 18.64,
        acc_gpu: 18.49,
        acc_ipu: 18.59,
        time_gpu_tc: 49.71,
        time_gpu: 53.21,
        time_ipu: 21.75,
    },
    Table4Anchor {
        method: "Pixelfly",
        n_params: 404_490,
        acc_gpu_tc: 42.61,
        acc_gpu: 43.31,
        acc_ipu: 43.79,
        time_gpu_tc: 52.79,
        time_gpu: 56.01,
        time_ipu: 71.62,
    },
];

/// Headline compression ratio for butterfly (abstract / §4.2).
pub const BUTTERFLY_COMPRESSION_PERCENT: f64 = 98.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_parameter_counts_are_internally_consistent() {
        // The baseline count decodes as a 1024-dim SHL + 10-way classifier.
        let baseline = TABLE4[0].n_params;
        assert_eq!(baseline, 1024 * 1024 + 1024 + 1024 * 10 + 10);
        // And the headline compression ratio matches butterfly's count.
        let ratio = (1.0 - TABLE4[1].n_params as f64 / baseline as f64) * 100.0;
        assert!((ratio - BUTTERFLY_COMPRESSION_PERCENT).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn sparse_anchors_can_exceed_peaks() {
        // The dense-equivalent convention: popsparse 99% exceeds IPU peak.
        assert!(TABLE2_SPARSE[2].gflops > IPU_PEAK);
        assert!(TABLE2_SPARSE[0].gflops > GPU_FP32_PEAK);
    }
}
