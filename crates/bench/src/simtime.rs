//! Simulated device-side training time, shared by the Table 4 and Table 5
//! harnesses.
//!
//! Training runs for real on the host; what the devices *would* take is
//! priced from the per-step forward op trace: forward + backward is
//! approximated as 3x the forward trace (the gradient-input and
//! gradient-weight passes mirror the forward ops), and per-step data
//! staging / framework synchronisation is added per device.

use bfly_gpu::GpuDevice;
use bfly_ipu::IpuDevice;
use bfly_tensor::LinOp;

/// Backward+forward cost relative to the forward trace.
pub const STEP_FACTOR: f64 = 3.0;

/// Host round trips per training step for layers whose backward needs a
/// scatter-add (the pixelfly block gather): the framework path cannot keep
/// those on-device. Modelling hypothesis — see EXPERIMENTS.md — that
/// reconciles pixelfly being competitive in the forward-only Fig 6 with its
/// 2.9x-slower-than-baseline Table 4 *training* time on the IPU.
pub const PIXELFLY_GRAPH_BREAKS_PER_STEP: f64 = 4.0;

/// Simulated seconds for a whole training run on the three device
/// configurations: `(gpu_with_tc, gpu_without_tc, ipu)`.
pub fn simulated_training_seconds(
    forward: &[LinOp],
    batch: usize,
    dim: usize,
    steps: usize,
    epochs: usize,
    gpu: &GpuDevice,
    ipu: &IpuDevice,
) -> (f64, f64, f64) {
    let gpu_step = |tc: bool| -> f64 {
        gpu.run(forward, tc).map(|r| r.seconds()).unwrap_or(f64::NAN) * STEP_FACTOR
    };
    // IPU: per-step mini-batch staging over the host link; the PopTorch
    // StepIO sync is paid once per epoch (deviceIterations-style batching).
    let batch_bytes = (4 * batch * dim) as u64;
    let mut ipu_step = ipu
        .run(forward)
        .map(|r| r.seconds(ipu.spec()) + batch_bytes as f64 / ipu.spec().host_link_bytes_per_sec)
        .unwrap_or(f64::NAN)
        * STEP_FACTOR;
    if let Some(staged_bytes) = forward.iter().find_map(|op| match *op {
        LinOp::BlockSpMM { n, block, nnz_blocks, .. } => {
            // The gathered activation blocks (batch x nnz_blocks x block)
            // plus the block payloads themselves (the weight-gradient
            // scatter stages dW off-device too).
            Some((4 * nnz_blocks * block * (n + block)) as u64)
        }
        _ => None,
    }) {
        ipu_step += PIXELFLY_GRAPH_BREAKS_PER_STEP
            * (ipu.spec().host_sync_seconds
                + staged_bytes as f64 / ipu.spec().host_link_bytes_per_sec);
    }
    let ipu_total = ipu_step * steps as f64 + ipu.spec().host_sync_seconds * epochs as f64;
    (gpu_step(true) * steps as f64, gpu_step(false) * steps as f64, ipu_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_trains_faster_on_ipu_than_gpu() {
        // The Table 4 baseline shape: IPU roughly 2x faster.
        let gpu = GpuDevice::a30();
        let ipu = IpuDevice::gc200();
        let forward = [LinOp::MatMul { m: 50, k: 1024, n: 1024 }];
        let (t_tc, t_gpu, t_ipu) =
            simulated_training_seconds(&forward, 50, 1024, 100, 5, &gpu, &ipu);
        assert!(t_ipu < t_gpu, "IPU {t_ipu} vs GPU {t_gpu}");
        assert!(t_tc > 0.0 && t_gpu > 0.0);
    }

    #[test]
    fn block_sparse_pays_graph_break_penalty_on_ipu() {
        let gpu = GpuDevice::a30();
        let ipu = IpuDevice::gc200();
        let with_blocks =
            [LinOp::BlockSpMM { m: 1024, k: 1024, n: 50, block: 32, nnz_blocks: 128 }];
        let without = [LinOp::MatMul { m: 50, k: 1024, n: 1024 }];
        let (_, _, t_blocks) =
            simulated_training_seconds(&with_blocks, 50, 1024, 100, 5, &gpu, &ipu);
        let (_, _, t_dense) = simulated_training_seconds(&without, 50, 1024, 100, 5, &gpu, &ipu);
        assert!(t_blocks > 2.0 * t_dense, "blocks {t_blocks} vs dense {t_dense}");
    }
}
