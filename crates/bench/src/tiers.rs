//! Implementation-tier models for Table 2.
//!
//! Table 2 compares *implementations*, not just devices: hand-written naive
//! and shared-memory/blocked kernels, vendor libraries, and framework-level
//! (PyTorch/PopTorch) paths. The vendor-library and framework paths come
//! from the device simulators; the hand-written tiers below are explicit
//! efficiency models calibrated to the paper's measurements, because their
//! inefficiencies (no tiling, poor vectorisation, temporary copies) are
//! properties of the *kernel code*, not of the hardware model.

use bfly_gpu::GpuDevice;
use bfly_ipu::graph::{Codelet, Graph, TileMapping};
use bfly_ipu::{execute, IpuDevice};
use bfly_tensor::LinOp;

/// Fraction of FP32 peak a naive (uncoalesced, untiled) CUDA matmul
/// achieves (Table 2: 1091 / 10300).
pub const GPU_NAIVE_EFF: f64 = 0.106;

/// Fraction of FP32 peak the shared-memory tiled CUDA matmul achieves
/// (Table 2: 2076 / 10300).
pub const GPU_SHMEM_EFF: f64 = 0.202;

/// Fraction of the cuBLAS rate PyTorch's dispatch overhead leaves
/// (Table 2: 9286 / 9722).
pub const GPU_PYTORCH_FACTOR: f64 = 0.955;

/// GPU naive-kernel time for an `n^3` matmul, in seconds.
pub fn gpu_naive_seconds(n: usize, dev: &GpuDevice) -> f64 {
    let flops = 2.0 * (n as f64).powi(3);
    flops / (dev.spec().fp32_peak * GPU_NAIVE_EFF) + dev.spec().kernel_launch_seconds
}

/// GPU shared-memory-kernel time for an `n^3` matmul, in seconds.
pub fn gpu_shmem_seconds(n: usize, dev: &GpuDevice) -> f64 {
    let flops = 2.0 * (n as f64).powi(3);
    flops / (dev.spec().fp32_peak * GPU_SHMEM_EFF) + dev.spec().kernel_launch_seconds
}

/// GPU PyTorch-level matmul time (cuBLAS plus dispatch overhead).
pub fn gpu_pytorch_seconds(n: usize, tensor_cores: bool, dev: &GpuDevice) -> f64 {
    let r = dev
        .run(&[LinOp::MatMul { m: n, k: n, n }], tensor_cores)
        .expect("table-2 sizes fit on the GPU");
    r.seconds() / GPU_PYTORCH_FACTOR
}

/// "IPU naive" tier: the whole matmul lowered to scalar codelets with an
/// even split across tiles and no exchange planning.
pub fn ipu_naive_seconds(n: usize, dev: &IpuDevice) -> f64 {
    let spec = dev.spec();
    // 2-D output split so the busiest tile carries minimal padding.
    let grid = (spec.tiles as f64).sqrt().floor() as u32;
    let tiles = grid * grid;
    let rows_per = n.div_ceil(grid as usize).max(1);
    let cols_per = n.div_ceil(grid as usize).max(1);
    let mut g = Graph::new();
    g.add_variable("A", (4 * n * n) as u64, TileMapping::Spread { start: 0, count: tiles });
    g.add_variable("B", (4 * n * n) as u64, TileMapping::Spread { start: 0, count: tiles });
    g.add_variable("C", (4 * n * n) as u64, TileMapping::Spread { start: 0, count: tiles });
    let vs: Vec<u32> = (0..tiles)
        .map(|t| g.add_vertex(Codelet::MatMulScalar { m: rows_per, k: n, n: cols_per }, t, 3))
        .collect();
    g.add_compute_set("naive", vs);
    let r = execute(&g, spec);
    r.seconds(spec)
}

/// Slowdown of the blocked kernel's inner loop relative to the naive one:
/// the temporary block buffers defeat vectorisation and add a load/store
/// per accumulation (calibrated so the tier lands near Table 2's
/// 93 GFLOP/s against naive's 525).
pub const IPU_BLOCKED_INNER_SLOWDOWN: usize = 5;

/// "IPU blocked" tier: block-tiled scalar kernel whose temporaries are
/// copied per block step. The paper's Note 3: "performance of IPU blocked
/// suffers from too much temporal data being allocated and many copies
/// taking place" — copies dominate, landing near 93 GFLOP/s.
pub fn ipu_blocked_seconds(n: usize, dev: &IpuDevice) -> f64 {
    let spec = dev.spec();
    let grid = (spec.tiles as f64).sqrt().floor() as u32;
    let tiles = grid * grid;
    let block = 64usize;
    let steps = n.div_ceil(block);
    let mut g = Graph::new();
    g.add_variable("A", (4 * n * n) as u64, TileMapping::Spread { start: 0, count: tiles });
    g.add_variable("B", (4 * n * n) as u64, TileMapping::Spread { start: 0, count: tiles });
    g.add_variable("C", (4 * n * n) as u64, TileMapping::Spread { start: 0, count: tiles });
    // Each k-block step: copy the temporaries in, multiply (at the slowed
    // inner-loop rate, modelled as an inflated inner dimension), copy out.
    let rows_per = n.div_ceil(grid as usize).max(1);
    let cols_per = n.div_ceil(grid as usize).max(1);
    for s in 0..steps {
        let copy_bytes = (4 * 3 * block * n) as u64 / u64::from(tiles) + 256;
        let cvs: Vec<u32> = (0..tiles)
            .map(|t| g.add_vertex(Codelet::LocalCopy { bytes: copy_bytes * 4 }, t, 2))
            .collect();
        g.add_compute_set(format!("copy{s}"), cvs);
        let vs: Vec<u32> = (0..tiles)
            .map(|t| {
                g.add_vertex(
                    Codelet::MatMulScalar {
                        m: rows_per,
                        k: block * IPU_BLOCKED_INNER_SLOWDOWN,
                        n: cols_per,
                    },
                    t,
                    3,
                )
            })
            .collect();
        g.add_compute_set(format!("mm{s}"), vs);
    }
    let r = execute(&g, spec);
    r.seconds(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_tier_ordering_matches_table2() {
        let dev = GpuDevice::a30();
        let n = 2048;
        let naive = gpu_naive_seconds(n, &dev);
        let shmem = gpu_shmem_seconds(n, &dev);
        let torch = gpu_pytorch_seconds(n, false, &dev);
        assert!(naive > shmem && shmem > torch, "{naive} {shmem} {torch}");
    }

    #[test]
    fn ipu_blocked_is_slower_than_naive() {
        // Table 2's surprise: blocked (93) is much slower than naive (525).
        let dev = IpuDevice::gc200();
        let n = 2048;
        assert!(ipu_blocked_seconds(n, &dev) > ipu_naive_seconds(n, &dev));
    }

    #[test]
    fn ipu_naive_lands_near_anchor() {
        let dev = IpuDevice::gc200();
        let n = 2048;
        let gflops = 2.0 * (n as f64).powi(3) / ipu_naive_seconds(n, &dev) / 1e9;
        // Table 2 anchor: 525 GFLOP/s. Accept a factor-2 band.
        assert!((250.0..1100.0).contains(&gflops), "IPU naive at {gflops} GFLOP/s");
    }
}
