//! Optional machine-readable output for the harness binaries.
//!
//! Every figure/table binary prints a human-readable table; setting
//! `BFLY_JSON=1` additionally writes the underlying series as JSON under
//! `target/bench-results/`, so plots can be regenerated without scraping
//! stdout.

use serde::Serialize;
use std::path::PathBuf;

/// Where JSON results are written.
pub fn results_dir() -> PathBuf {
    PathBuf::from("target").join("bench-results")
}

/// True when the user asked for JSON output (`BFLY_JSON=1`).
pub fn json_enabled() -> bool {
    std::env::var("BFLY_JSON").map(|v| v == "1").unwrap_or(false)
}

/// Writes `value` as `target/bench-results/<name>.json` when enabled.
/// Returns the path written, or `None` when disabled or on I/O failure
/// (failures are reported to stderr, never fatal for a bench run).
pub fn maybe_write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    if !json_enabled() {
        return None;
    }
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("BFLY_JSON: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => match std::fs::write(&path, body) {
            Ok(()) => {
                eprintln!("BFLY_JSON: wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("BFLY_JSON: cannot write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("BFLY_JSON: serialisation failed: {e}");
            None
        }
    }
}

/// Writes a committed benchmark result — `BENCH_<name>.json` in the
/// current directory (the repo root under `cargo run`) — unless this is a
/// smoke run, in which case the checked-in file is left untouched and a
/// note says so. Full-run serialization or I/O failure is fatal: a bench
/// run whose numbers cannot be recorded did not happen.
pub fn write_bench_json<T: Serialize>(name: &str, value: &T, smoke: bool) {
    let file = format!("BENCH_{name}.json");
    if smoke {
        println!("smoke run: {file} left untouched");
        return;
    }
    let body = serde_json::to_string_pretty(value).expect("bench output must serialize");
    std::fs::write(&file, body).unwrap_or_else(|e| panic!("cannot write {file}: {e}"));
    println!("wrote {file}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        n: usize,
        value: f64,
    }

    #[test]
    fn disabled_by_default() {
        std::env::remove_var("BFLY_JSON");
        assert!(!json_enabled());
        assert!(maybe_write_json("unit-test", &Row { n: 1, value: 2.0 }).is_none());
    }

    #[test]
    fn smoke_runs_never_touch_committed_results() {
        write_bench_json("unit-test-smoke", &Row { n: 1, value: 2.0 }, true);
        assert!(!std::path::Path::new("BENCH_unit-test-smoke.json").exists());
    }

    #[test]
    fn writes_when_enabled() {
        std::env::set_var("BFLY_JSON", "1");
        let path = maybe_write_json("unit-test-write", &vec![Row { n: 1, value: 2.0 }])
            .expect("should write");
        let body = std::fs::read_to_string(&path).expect("readable");
        assert!(body.contains("\"n\": 1"));
        std::fs::remove_file(path).ok();
        std::env::remove_var("BFLY_JSON");
    }
}
