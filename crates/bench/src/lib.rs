//! # bfly-bench
//!
//! Harness library shared by the table/figure reproduction binaries:
//! paper-reported anchor values, implementation-tier efficiency constants
//! for the Table 2 comparison, and plain-text table formatting.

#![warn(missing_docs)]

pub mod anchors;
pub mod json;
pub mod legacy;
pub mod simtime;
pub mod tiers;

use std::fmt::Write as _;

/// True when the binary was invoked with `--smoke` (or `BFLY_BENCH_SMOKE=1`
/// is set): CI-sized sweeps that must never overwrite the checked-in
/// `BENCH_*.json` numbers, which always come from full runs.
pub fn smoke_run() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("BFLY_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Reads a `u64` environment knob, falling back to `default` when the
/// variable is unset or unparsable.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a `usize` environment knob, falling back to `default` when the
/// variable is unset or unparsable.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads an `f64` environment knob, falling back to `default` when the
/// variable is unset or unparsable.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Host cores available to the process — stamped into every committed
/// bench JSON so results carry their provenance.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Formats a plain-text table with a header row and aligned columns.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = w);
        }
        out.push('\n');
    };
    write_row(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Formats byte counts with an adaptive unit.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b < 1024.0 {
        format!("{bytes} B")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else if b < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn time_units_adapt() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-5).ends_with("us"));
        assert!(fmt_time(5e-2).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }

    #[test]
    fn bytes_units_adapt() {
        assert_eq!(fmt_bytes(100), "100 B");
        assert!(fmt_bytes(10 * 1024).contains("KiB"));
        assert!(fmt_bytes(10 << 20).contains("MiB"));
        assert!(fmt_bytes(10 << 30).contains("GiB"));
    }

    #[test]
    fn mean_std_matches_manual() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn env_knobs_fall_back_and_parse() {
        // Unique variable names so parallel tests cannot interfere.
        assert_eq!(env_u64("BFLY_TEST_KNOB_U64_UNSET", 7), 7);
        std::env::set_var("BFLY_TEST_KNOB_U64", "42");
        assert_eq!(env_u64("BFLY_TEST_KNOB_U64", 7), 42);
        std::env::set_var("BFLY_TEST_KNOB_U64", "not a number");
        assert_eq!(env_u64("BFLY_TEST_KNOB_U64", 7), 7);
        std::env::remove_var("BFLY_TEST_KNOB_U64");

        std::env::set_var("BFLY_TEST_KNOB_USIZE", "5");
        assert_eq!(env_usize("BFLY_TEST_KNOB_USIZE", 1), 5);
        std::env::remove_var("BFLY_TEST_KNOB_USIZE");

        std::env::set_var("BFLY_TEST_KNOB_F64", "2.5");
        assert_eq!(env_f64("BFLY_TEST_KNOB_F64", 1.0), 2.5);
        std::env::remove_var("BFLY_TEST_KNOB_F64");
    }

    #[test]
    fn host_cores_is_at_least_one() {
        assert!(host_cores() >= 1);
    }
}
