//! Ablation — streaming memory (the paper's future work: "the use of
//! streaming memory in combination with sparse methods").
//!
//! Sweeps the hidden dimension past the on-chip SRAM boundary and compares
//! the dense layer against the butterfly under the M2000's 64 GB / 20 GB/s
//! streaming memory: once the dense weights spill off-chip, every step
//! re-streams them at link speed, while the butterfly's compressed weights
//! stay resident and keep on-chip throughput.

use bfly_bench::{fmt_bytes, fmt_time, format_table};
use bfly_ipu::streaming::{run_streaming, StreamingSpec};
use bfly_ipu::IpuDevice;
use bfly_tensor::ops::trace_flops;
use bfly_tensor::LinOp;

fn dense_trace(n: usize, batch: usize) -> Vec<LinOp> {
    vec![LinOp::MatMul { m: batch, k: n, n }]
}

fn butterfly_trace(n: usize, batch: usize) -> Vec<LinOp> {
    let mut ops = vec![LinOp::Permute { rows: batch, width: n }];
    for _ in 0..n.trailing_zeros() {
        ops.push(LinOp::Twiddle { pairs: n / 2, batch });
    }
    ops.push(LinOp::Elementwise { n: batch * n, flops_per_elem: 1 });
    ops
}

fn main() {
    let dev = IpuDevice::gc200();
    let spec = dev.spec();
    let streaming = StreamingSpec::m2000();
    let batch = 256usize;

    println!(
        "Ablation: streaming memory ({} off-chip @ {} GB/s), batch {batch}\n",
        fmt_bytes(streaming.capacity_bytes),
        streaming.bytes_per_sec / 1e9
    );

    let mut rows = Vec::new();
    for e in 12..=16u32 {
        let n = 1usize << e;
        let dense = run_streaming(&dense_trace(n, batch), spec, &streaming);
        let bfly = run_streaming(&butterfly_trace(n, batch), spec, &streaming);
        let cell = |r: &Result<bfly_ipu::StreamingReport, _>, flops: f64| match r {
            Ok(rep) => format!(
                "{} ({}{})",
                fmt_time(rep.seconds()),
                if rep.fully_resident { "resident" } else { "streams " },
                if rep.fully_resident { String::new() } else { fmt_bytes(rep.streamed_bytes) }
            ),
            Err(_) => {
                let _ = flops;
                "exceeds streaming memory".into()
            }
        };
        rows.push(vec![
            format!("2^{e}"),
            fmt_bytes((4 * n * n) as u64),
            cell(&dense, trace_flops(&dense_trace(n, batch))),
            cell(&bfly, trace_flops(&butterfly_trace(n, batch))),
        ]);
    }
    println!("{}", format_table(&["N", "dense weights", "dense step", "butterfly step"], &rows));
    println!(
        "shape: past the SRAM boundary the dense layer's step time is set by the\n\
         20 GB/s link (weights re-streamed every step); the butterfly's O(N log N)\n\
         weights stay on chip to far larger N — compression compounds with\n\
         streaming memory, the combination the paper proposes to investigate."
    );
}
