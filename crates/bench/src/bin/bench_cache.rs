//! bench_cache — quantifies the content-addressed response cache of
//! `bfly-serve`.
//!
//! The generator offers the identical seeded workload twice — once with the
//! cache disabled, once enabled — at each point of an input-reuse sweep:
//! the open-loop driver cycles through a pool of `p` distinct inputs across
//! `n` requests, so the fraction `1 - p/n` of the offered load is repeated
//! content. With the cache off every request computes; with it on, repeats
//! are served from the memo (or coalesce onto an in-flight forward) without
//! touching the batcher. Queues are sized to never shed, so both runs
//! complete the same `n` requests and the comparison is at equal offered
//! load; the cache's win shows up as wall-clock (throughput) and tail
//! latency. Results are printed as a table and written to
//! `BENCH_cache.json`.
//!
//! Environment knobs: BFLY_CACHE_DIM (default 256), BFLY_CACHE_REQUESTS
//! (default 4000), BFLY_CACHE_RATE (offered rps, default 1e6 ~ burst),
//! BFLY_CACHE_WORKERS (default 2), BFLY_CACHE_BATCH (default 32).
//!
//! `--smoke` (or BFLY_BENCH_SMOKE=1) runs a tiny sweep for CI and skips the
//! JSON write so checked-in numbers always come from a full run.

use bfly_bench::json::write_bench_json;
use bfly_bench::{env_f64, env_usize, host_cores, smoke_run};
use bfly_core::Method;
use bfly_serve::{open_loop_with_pool, CacheConfig, LoadReport, ServeConfig, Server};
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct RunStats {
    cache_enabled: bool,
    throughput_rps: f64,
    latency_p50_us: u64,
    latency_p95_us: u64,
    latency_p99_us: u64,
    latency_mean_us: f64,
    completed: u64,
    shed: u64,
    /// Server-side cache accounting for this run (all zero when disabled).
    cache_hits: u64,
    cache_coalesced: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    /// Fraction of lookups served without a dedicated forward (memo hits
    /// plus coalesced riders) — the share of offered load the cache
    /// absorbed. Under a burst most repeats coalesce onto the in-flight
    /// leader rather than hit the memo, so this is the honest "cached"
    /// number.
    cache_served_rate: f64,
}

#[derive(Serialize)]
struct SweepPoint {
    /// Distinct inputs the generator cycled through.
    pool_size: usize,
    /// Fraction of offered requests whose input was a repeat: `1 - p/n`.
    reuse_frac: f64,
    cache_off: RunStats,
    cache_on: RunStats,
    /// cache-on throughput over cache-off throughput at equal offered load.
    throughput_speedup: f64,
    /// cache-off p99 over cache-on p99 (>1 means the cache cut the tail).
    p99_reduction: f64,
}

#[derive(Serialize)]
struct BenchOutput {
    host_cores: usize,
    dim: usize,
    classes: usize,
    workers: usize,
    requests: u64,
    offered_rate_rps: f64,
    max_batch: usize,
    cache_capacity: usize,
    cache_shards: usize,
    results: Vec<SweepPoint>,
}

#[allow(clippy::too_many_arguments)]
fn run_once(
    dim: usize,
    workers: usize,
    max_batch: usize,
    requests: u64,
    rate: f64,
    pool_size: usize,
    cache: CacheConfig,
) -> RunStats {
    let enabled = cache.enabled;
    let config = ServeConfig {
        dim,
        classes: 10,
        seed: 0xCACE,
        max_batch,
        max_wait: Duration::from_micros(200),
        // Deep enough that nothing sheds: both runs then complete the same
        // offered load and throughput compares wall-clock, not drop rate.
        queue_capacity: (requests as usize).max(256),
        workers,
        tensor_cores: false,
        cache,
        ..Default::default()
    };
    let server = Server::start(config, &[Method::Butterfly]).expect("dim must fit butterfly");
    let report: LoadReport =
        open_loop_with_pool(&server, "butterfly", rate, requests, 0xBEE5, pool_size);
    let snapshot = server.shutdown();
    let m = &snapshot.models[0];
    RunStats {
        cache_enabled: enabled,
        throughput_rps: report.throughput_rps,
        latency_p50_us: report.latency_p50_us,
        latency_p95_us: report.latency_p95_us,
        latency_p99_us: report.latency_p99_us,
        latency_mean_us: report.latency_mean_us,
        completed: report.completed,
        shed: report.shed,
        cache_hits: m.cache_hits,
        cache_coalesced: m.cache_coalesced,
        cache_misses: m.cache_misses,
        cache_hit_rate: m.cache_hit_rate,
        cache_served_rate: {
            let looked = m.cache_hits + m.cache_coalesced + m.cache_misses;
            if looked == 0 {
                0.0
            } else {
                (m.cache_hits + m.cache_coalesced) as f64 / looked as f64
            }
        },
    }
}

fn main() {
    let smoke = smoke_run();
    let dim = env_usize("BFLY_CACHE_DIM", 256);
    let requests = env_usize("BFLY_CACHE_REQUESTS", if smoke { 300 } else { 4000 }) as u64;
    let rate = env_f64("BFLY_CACHE_RATE", 1e6);
    let workers = env_usize("BFLY_CACHE_WORKERS", 2);
    let max_batch = env_usize("BFLY_CACHE_BATCH", 32);
    let cache_config = CacheConfig::default();

    // Reuse sweep: pool of n distinct inputs = 0% repeats, down to a pool
    // of n/100 = 99% repeats.
    let divisors: &[(u64, &str)] = if smoke {
        &[(1, "0%"), (2, "50%"), (10, "90%")]
    } else {
        &[(1, "0%"), (4, "75%"), (2, "50%"), (10, "90%"), (100, "99%")]
    };

    println!(
        "bench_cache: dim {dim}, {requests} requests offered at {rate:.0} rps, \
         batch {max_batch}, {workers} workers, cache capacity {} x {} shards{}\n",
        cache_config.capacity,
        cache_config.shards,
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "reuse", "pool", "off rps", "on rps", "speedup", "off p99", "on p99", "p99 cut", "cached"
    );

    let mut results = Vec::new();
    for &(divisor, label) in divisors {
        let pool_size = ((requests / divisor).max(1)) as usize;
        let reuse_frac = 1.0 - pool_size as f64 / requests as f64;
        let off =
            run_once(dim, workers, max_batch, requests, rate, pool_size, CacheConfig::disabled());
        let on = run_once(dim, workers, max_batch, requests, rate, pool_size, cache_config.clone());
        let throughput_speedup =
            if off.throughput_rps > 0.0 { on.throughput_rps / off.throughput_rps } else { 0.0 };
        let p99_reduction = if on.latency_p99_us > 0 {
            off.latency_p99_us as f64 / on.latency_p99_us as f64
        } else {
            f64::INFINITY
        };
        println!(
            "{:>6} {:>6} {:>12.0} {:>12.0} {:>7.2}x {:>10} {:>10} {:>7.2}x {:>7.1}%",
            label,
            pool_size,
            off.throughput_rps,
            on.throughput_rps,
            throughput_speedup,
            off.latency_p99_us,
            on.latency_p99_us,
            p99_reduction,
            100.0 * on.cache_served_rate,
        );
        results.push(SweepPoint {
            pool_size,
            reuse_frac,
            cache_off: off,
            cache_on: on,
            throughput_speedup,
            p99_reduction,
        });
    }

    let output = BenchOutput {
        host_cores: host_cores(),
        dim,
        classes: 10,
        workers,
        requests,
        offered_rate_rps: rate,
        max_batch,
        cache_capacity: cache_config.capacity,
        cache_shards: cache_config.shards,
        results,
    };
    println!();
    write_bench_json("cache", &output, smoke);
}
