//! bench_ingress — quantifies the zero-copy framed front door of
//! `bfly-serve`.
//!
//! Three arms:
//!
//! 1. **Submit path**: offers the identical seeded workload twice against a
//!    shedding server (cache off, shallow queue, so the measured cost is
//!    the submit path itself, not compute) — once cloning an owned
//!    `Vec<f32>` per submission (the pre-payload behaviour: one clone in
//!    the caller plus one `Vec -> Arc` conversion at admission), once
//!    bumping the refcount of a shared `Payload`. Equal offered load;
//!    the speedup is allocation+memcpy eliminated per request.
//! 2. **Wire decode**: encodes a frame stream once, then decodes it in
//!    transport-sized chunks two ways — payload *views* into the read
//!    segments (the zero-copy codec) vs. materializing an owned vector per
//!    request (what a copying codec would do). Also reports how many
//!    payloads straddled a segment boundary and genuinely had to be copied.
//! 3. **QoS isolation**: a closed-loop interactive client runs over the
//!    in-memory ingress twice — alone, and against a 10:1 batch-frame
//!    flood from rate-limited batch connections. Weighted-fair scheduling
//!    plus the batch tenant's token bucket must keep the flooded
//!    interactive p99 within 2x of the uncontended p99, with every batch
//!    refusal answered (counted, never dropped).
//!
//! Environment knobs: BFLY_INGRESS_DIM (default 4096 — a 16 KiB activation,
//! the payload size where the copy tax this paper cares about actually
//! shows up), BFLY_INGRESS_SUBMITS (default 200000), BFLY_INGRESS_POOL
//! (default 64), BFLY_INGRESS_FRAMES (default 4000),
//! BFLY_INGRESS_INTERACTIVE (default 800), BFLY_INGRESS_WORKERS (default 2).
//!
//! `--smoke` (or BFLY_BENCH_SMOKE=1) runs a tiny version for CI and skips
//! the JSON write so checked-in numbers always come from a full run.

use bfly_bench::json::write_bench_json;
use bfly_bench::{env_usize, host_cores, smoke_run};
use bfly_core::Method;
use bfly_serve::ingress::transport::pipe_listener;
use bfly_serve::ingress::{
    encode_request, Frame, FrameDecoder, IngressClient, IngressServer, QosClass, RequestFrame,
    WireStatus,
};
use bfly_serve::{CacheConfig, IngressConfig, Payload, QosConfig, RateLimit, ServeConfig, Server};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

// ---------------------------------------------------------------------------
// Arm 1: submit path
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct SubmitArm {
    requests: u64,
    pool_size: usize,
    /// Offered submissions per second with an owned `Vec<f32>` cloned per
    /// request (pre-payload behaviour).
    owned_submits_per_s: f64,
    /// Offered submissions per second with a shared `Payload` refcount
    /// bump per request.
    shared_submits_per_s: f64,
    /// shared over owned at equal offered load — the acceptance bar is
    /// >= 1.5x.
    speedup: f64,
    owned_accepted: u64,
    shared_accepted: u64,
}

fn submit_server(dim: usize, workers: usize) -> Server {
    let config = ServeConfig {
        dim,
        classes: 10,
        seed: 0x1285,
        max_batch: 32,
        max_wait: Duration::from_micros(100),
        // Shallow on purpose: the flood mostly sheds, so the loop measures
        // the submit path (locate, validate, enqueue-or-shed) plus input
        // preparation — exactly where the copies used to live.
        queue_capacity: 64,
        workers,
        tensor_cores: false,
        cache: CacheConfig::disabled(),
        ..Default::default()
    };
    Server::start(config, &[Method::Butterfly]).expect("dim must fit butterfly")
}

fn submit_arm(dim: usize, workers: usize, requests: u64, pool_size: usize) -> SubmitArm {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xF00D);
    let owned_pool: Vec<Vec<f32>> =
        (0..pool_size).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let shared_pool: Vec<Payload> = owned_pool.iter().map(|v| Payload::from(v.clone())).collect();

    let run = |shared: bool| -> (f64, u64) {
        let server = submit_server(dim, workers);
        let mut accepted = 0u64;
        let start = Instant::now();
        for i in 0..requests {
            let slot = (i as usize) % pool_size;
            let outcome = if shared {
                server.submit("butterfly", 0, i, shared_pool[slot].clone())
            } else {
                server.submit("butterfly", 0, i, owned_pool[slot].clone())
            };
            if let Ok(handle) = outcome {
                accepted += 1;
                drop(handle); // shutdown drains; the offer rate is the metric
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        server.shutdown();
        (requests as f64 / elapsed, accepted)
    };

    let (owned_submits_per_s, owned_accepted) = run(false);
    let (shared_submits_per_s, shared_accepted) = run(true);
    SubmitArm {
        requests,
        pool_size,
        owned_submits_per_s,
        shared_submits_per_s,
        speedup: shared_submits_per_s / owned_submits_per_s,
        owned_accepted,
        shared_accepted,
    }
}

// ---------------------------------------------------------------------------
// Arm 2: wire decode
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct WireArm {
    frames: u64,
    stream_bytes: u64,
    chunk_bytes: usize,
    /// Decoded frames per second with payloads left as views into the read
    /// segments.
    view_frames_per_s: f64,
    /// Decoded frames per second with every payload materialized into an
    /// owned vector (a copying codec's obligatory extra work).
    copyout_frames_per_s: f64,
    view_over_copyout: f64,
    view_gib_per_s: f64,
    /// Payloads that straddled a chunk boundary and had to be copied.
    payload_copies: u64,
    zero_copy_frac: f64,
}

fn wire_arm(dim: usize, frames: u64, chunk_bytes: usize) -> WireArm {
    let mut stream = Vec::new();
    for s in 0..frames {
        let payload: Vec<f32> = (0..dim).map(|i| ((s as usize * dim + i) as f32).sin()).collect();
        stream.extend_from_slice(&encode_request(&RequestFrame {
            class: QosClass::Interactive,
            model: "butterfly".to_string(),
            tenant: "bench".to_string(),
            client: 0,
            seq: s,
            deadline_us: 0,
            payload: payload.into(),
        }));
    }
    let stream_bytes = stream.len() as u64;

    let run = |copy_out: bool| -> (f64, u64) {
        let mut decoder = FrameDecoder::new(1 << 24);
        let mut decoded = 0u64;
        let mut sink = 0u64; // keeps payload reads observable
        let start = Instant::now();
        for part in stream.chunks(chunk_bytes) {
            decoder.push(Arc::from(part));
            while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
                let Frame::Request(request) = frame else { unreachable!("request stream") };
                decoded += 1;
                if copy_out {
                    let owned = request.payload.to_vec();
                    sink ^= owned[0].to_bits() as u64;
                } else {
                    sink ^= request.payload.get(0).to_bits() as u64;
                }
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(decoded, frames);
        assert_ne!(sink, u64::MAX); // defeats dead-code elimination
        (frames as f64 / elapsed, decoder.payload_copies())
    };

    let (copyout_frames_per_s, _) = run(true);
    let (view_frames_per_s, payload_copies) = run(false);
    WireArm {
        frames,
        stream_bytes,
        chunk_bytes,
        view_frames_per_s,
        copyout_frames_per_s,
        view_over_copyout: view_frames_per_s / copyout_frames_per_s,
        view_gib_per_s: stream_bytes as f64 * view_frames_per_s
            / frames as f64
            / (1u64 << 30) as f64,
        payload_copies,
        zero_copy_frac: 1.0 - payload_copies as f64 / frames as f64,
    }
}

// ---------------------------------------------------------------------------
// Arm 3: QoS isolation
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct QosArm {
    interactive_requests: u64,
    batch_flood_frames: u64,
    uncontended_p50_us: u64,
    uncontended_p99_us: u64,
    flooded_p50_us: u64,
    flooded_p99_us: u64,
    /// flooded p99 over uncontended p99 — the acceptance bar is <= 2x.
    p99_ratio: f64,
    batch_admitted: u64,
    batch_throttled: u64,
    batch_deferred: u64,
}

const QOS_DIM: usize = 1024;

fn qos_server(
    workers: usize,
) -> (Arc<Server>, IngressServer, bfly_serve::ingress::transport::PipeConnector) {
    let config = ServeConfig {
        dim: QOS_DIM,
        classes: 10,
        seed: 0x0905,
        max_batch: 8,
        max_wait: Duration::from_micros(100),
        queue_capacity: 128,
        workers,
        tensor_cores: false,
        cache: CacheConfig::disabled(),
        ingress: IngressConfig {
            qos: QosConfig {
                // Keep the admitted batch stream below service capacity so
                // the flood's backlog lives in the QoS queue (where DRR
                // protects interactive), not in the admission lanes — and
                // keep the burst tiny so admitted batch work cannot clump
                // ahead of an interactive request in the shared lane.
                tenant_rates: vec![("flood".to_string(), RateLimit::per_second(200.0, 2.0))],
                ..QosConfig::default()
            },
            ..IngressConfig::enabled()
        },
        ..Default::default()
    };
    let server = Arc::new(Server::start(config, &[Method::Butterfly]).expect("valid config"));
    let (listener, connector) = pipe_listener();
    let ingress = IngressServer::start(server.clone(), Box::new(listener));
    (server, ingress, connector)
}

/// Closed-loop interactive client with a think time between requests —
/// an interactive tenant issues a request, reads the answer, and pauses,
/// rather than spinning at line rate. The think time is excluded from the
/// measured latency; it also sets the rate the 10:1 flood is scaled from.
const THINK: Duration = Duration::from_millis(2);

fn interactive_latencies(
    connector: &bfly_serve::ingress::transport::PipeConnector,
    n: u64,
) -> (Vec<u64>, Duration) {
    let mut client = IngressClient::connect(connector, "interactive").expect("listener up");
    let mut latencies = Vec::with_capacity(n as usize);
    let run_start = Instant::now();
    for s in 0..n {
        if s > 0 {
            std::thread::sleep(THINK);
        }
        let payload: Vec<f32> =
            (0..QOS_DIM).map(|i| ((s as usize * QOS_DIM + i) as f32).sin()).collect();
        let start = Instant::now();
        client
            .send(&RequestFrame {
                class: QosClass::Interactive,
                model: "butterfly".to_string(),
                tenant: "user".to_string(),
                client: 1,
                seq: s,
                deadline_us: 0,
                payload: payload.into(),
            })
            .expect("connection up");
        let response =
            client.recv_timeout(Duration::from_secs(30)).expect("clean stream").expect("answered");
        assert_eq!(response.seq, s);
        assert_eq!(response.status, WireStatus::Compute);
        latencies.push(start.elapsed().as_micros() as u64);
    }
    let elapsed = run_start.elapsed();
    latencies.sort_unstable();
    (latencies, elapsed)
}

fn qos_arm(workers: usize, interactive_requests: u64) -> QosArm {
    // Uncontended baseline — also calibrates the interactive request rate
    // so the flood can offer a true 10:1 ratio against it.
    let (server, ingress, connector) = qos_server(workers);
    let (uncontended, uncontended_elapsed) =
        interactive_latencies(&connector, interactive_requests);
    ingress.shutdown();
    Arc::try_unwrap(server).ok().expect("ingress released").shutdown();
    let interactive_rate = interactive_requests as f64 / uncontended_elapsed.as_secs_f64();
    let flood_rate = 10.0 * interactive_rate;

    // 10:1 flood: one batch connection offers frames at 10x the calibrated
    // interactive rate while the same interactive loop runs. A single
    // sender thread — on a small box more senders just add context
    // switches without changing what the scheduler has to absorb.
    let flood_total = 10 * interactive_requests;
    let (server, ingress, connector) = qos_server(workers);
    let stop = Arc::new(AtomicBool::new(false));
    let flood_thread = {
        let connector = connector.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = IngressClient::connect(&connector, "flood").expect("listener up");
            // Shared payload: each send is a refcount bump, so the flood's
            // client-side cost is framing, not copying.
            let payload: Payload = vec![0.25f32; QOS_DIM].into();
            let mut sent = 0u64;
            let start = Instant::now();
            while sent < flood_total && !stop.load(Ordering::Relaxed) {
                let due = ((start.elapsed().as_secs_f64() * flood_rate) as u64).min(flood_total);
                let burst = due.saturating_sub(sent).min(4);
                for _ in 0..burst {
                    let _ = client.send(&RequestFrame {
                        class: QosClass::Batch,
                        model: "butterfly".to_string(),
                        tenant: "flood".to_string(),
                        client: 100,
                        seq: sent,
                        deadline_us: 0,
                        payload: payload.clone(),
                    });
                    sent += 1;
                }
                // Drain whatever answers are ready (throttles arrive
                // immediately) so the response stream never backs up; the
                // short timeout doubles as the pacing sleep.
                while let Ok(Some(_)) = client.recv_timeout(Duration::from_micros(100)) {}
            }
            client.close_send();
            // Drain the tail so every in-flight answer is delivered.
            while let Ok(Some(_)) = client.recv_timeout(Duration::from_millis(50)) {}
            sent
        })
    };
    // Let the flood establish a backlog before measuring.
    std::thread::sleep(Duration::from_millis(20));
    let (flooded, _) = interactive_latencies(&connector, interactive_requests);
    stop.store(true, Ordering::Relaxed);
    let batch_flood_frames: u64 = flood_thread.join().expect("flood");
    ingress.shutdown();
    let snapshot = Arc::try_unwrap(server).ok().expect("ingress released").shutdown();
    let flood_stats = snapshot
        .ingress
        .tenants
        .iter()
        .find(|t| t.tenant == "flood")
        .expect("flood tenant counted");

    let uncontended_p99 = quantile(&uncontended, 0.99);
    let flooded_p99 = quantile(&flooded, 0.99);
    QosArm {
        interactive_requests,
        batch_flood_frames,
        uncontended_p50_us: quantile(&uncontended, 0.50),
        uncontended_p99_us: uncontended_p99,
        flooded_p50_us: quantile(&flooded, 0.50),
        flooded_p99_us: flooded_p99,
        p99_ratio: flooded_p99 as f64 / uncontended_p99.max(1) as f64,
        batch_admitted: flood_stats.admitted,
        batch_throttled: flood_stats.throttled,
        batch_deferred: flood_stats.deferred,
    }
}

// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct BenchOutput {
    host_cores: usize,
    dim: usize,
    workers: usize,
    submit: SubmitArm,
    wire: WireArm,
    qos: QosArm,
}

fn main() {
    let smoke = smoke_run();
    let dim = env_usize("BFLY_INGRESS_DIM", 4096);
    let workers = env_usize("BFLY_INGRESS_WORKERS", 2);
    let submits = env_usize("BFLY_INGRESS_SUBMITS", if smoke { 5_000 } else { 200_000 }) as u64;
    let pool = env_usize("BFLY_INGRESS_POOL", 64);
    let frames = env_usize("BFLY_INGRESS_FRAMES", if smoke { 200 } else { 4_000 }) as u64;
    let interactive = env_usize("BFLY_INGRESS_INTERACTIVE", if smoke { 40 } else { 800 }) as u64;

    println!(
        "bench_ingress: dim {dim}, {workers} workers, {submits} offered submits, \
         {frames} wire frames, {interactive} interactive requests{}\n",
        if smoke { " [smoke]" } else { "" }
    );

    let submit = submit_arm(dim, workers, submits, pool);
    println!(
        "submit path   owned {:>11.0}/s   shared {:>11.0}/s   speedup {:>5.2}x",
        submit.owned_submits_per_s, submit.shared_submits_per_s, submit.speedup
    );

    let wire = wire_arm(dim, frames, 256 << 10);
    println!(
        "wire decode   view {:>12.0}/s   copy-out {:>9.0}/s   ratio {:>5.2}x   \
         {:.1} GiB/s   zero-copy {:.1}%",
        wire.view_frames_per_s,
        wire.copyout_frames_per_s,
        wire.view_over_copyout,
        wire.view_gib_per_s,
        100.0 * wire.zero_copy_frac
    );

    let qos = qos_arm(workers, interactive);
    println!(
        "qos isolation alone p50/p99 {:>5}/{:>5} us   flooded p50/p99 {:>5}/{:>5} us   \
         p99 ratio {:>4.2}x   batch admitted/throttled/deferred {}/{}/{}",
        qos.uncontended_p50_us,
        qos.uncontended_p99_us,
        qos.flooded_p50_us,
        qos.flooded_p99_us,
        qos.p99_ratio,
        qos.batch_admitted,
        qos.batch_throttled,
        qos.batch_deferred
    );

    let output = BenchOutput { host_cores: host_cores(), dim, workers, submit, wire, qos };
    println!();
    write_bench_json("ingress", &output, smoke);
}
