//! bench_blocksparse — times the fused block-sparse kernels against the
//! naive matmul-per-block reference (`BlockSparseMatrix::matmul_batch`) on
//! identical inputs.
//!
//! Two sections:
//!   * a **sweep** over block size x off-diagonal density x batch on a fixed
//!     1024-dim butterfly-style pattern, sparse term only, where fused and
//!     naive are required to agree **bit for bit** before either side is
//!     timed (the kernels' core contract, also pinned by proptests);
//!   * the **pixelfly point**: the full fused forward (sparse + low-rank +
//!     bias) against the pre-fusion affine (naive block matmul plus two
//!     dense low-rank passes) at the paper-default config
//!     (block 32, butterfly 8, rank 128) on n = 1024, batch 128 — the
//!     serving shape the issue's >= 2x acceptance bar is set on.
//!
//! Results print as tables and are written to `BENCH_blocksparse.json` at
//! the workspace root. `--smoke` or `BFLY_BENCH_SMOKE=1` runs a
//! seconds-long smoke version (tiny sizes, few iterations) and skips the
//! JSON write — used by CI to keep the binary from rotting.
//!
//! Environment knobs: BFLY_BENCH_SMOKE (0/1), BFLY_BENCH_ITERS_SCALE
//! (default 1.0, multiplies iteration counts).

use bfly_bench::format_table;
use bfly_bench::json::write_bench_json;
use bfly_bench::{env_f64, host_cores, smoke_run};
use bfly_core::{
    flat_butterfly_mask, fused_block_forward, BlockSparseMatrix, LowRankRef, PixelflyConfig,
};
use bfly_tensor::matmul::matmul_a_bt_slice;
use bfly_tensor::{seeded_rng, Matrix, Scratch};
use rand::Rng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct SweepPoint {
    n: usize,
    block: usize,
    /// Percentage of off-diagonal block-grid slots kept (the block-grid
    /// diagonal is always present).
    density_pct: u64,
    nnz_blocks: usize,
    batch: usize,
    naive_us: f64,
    fused_us: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct PixelflyPoint {
    n: usize,
    batch: usize,
    block_size: usize,
    butterfly_size: usize,
    rank: usize,
    nnz_blocks: usize,
    naive_us: f64,
    fused_us: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchOutput {
    host_cores: usize,
    sweep: Vec<SweepPoint>,
    pixelfly: PixelflyPoint,
}

/// Mean microseconds per call for a (naive, fused) pair, measured in strict
/// alternation (after one untimed warm-up call each) so slow clock drift
/// hits both sides equally instead of whichever ran later.
fn time_pair_us(iters: usize, mut naive: impl FnMut(), mut fused: impl FnMut()) -> (f64, f64) {
    naive();
    fused();
    let mut naive_secs = 0.0;
    let mut fused_secs = 0.0;
    for _ in 0..iters {
        let t = Instant::now();
        naive();
        naive_secs += t.elapsed().as_secs_f64();
        let t = Instant::now();
        fused();
        fused_secs += t.elapsed().as_secs_f64();
    }
    (naive_secs * 1e6 / iters as f64, fused_secs * 1e6 / iters as f64)
}

fn speedup(naive_us: f64, fused_us: f64) -> f64 {
    if fused_us > 0.0 {
        naive_us / fused_us
    } else {
        0.0
    }
}

/// Block-grid diagonal plus ~`density_pct`% of the off-diagonal slots,
/// deterministic in `seed`.
fn random_pattern(grid: usize, density_pct: u64, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = seeded_rng(seed);
    let mut coords = Vec::new();
    for i in 0..grid as u32 {
        for j in 0..grid as u32 {
            if i == j || rng.gen_range(0u64..100) < density_pct {
                coords.push((i, j));
            }
        }
    }
    coords
}

fn sweep_point(
    n: usize,
    block: usize,
    density_pct: u64,
    batch: usize,
    iters_scale: f64,
) -> SweepPoint {
    let grid = n / block;
    let coords = random_pattern(grid, density_pct, 0xB10C + block as u64);
    let mut rng = seeded_rng(0xF00D + n as u64 + block as u64);
    let w = BlockSparseMatrix::random(n, n, block, coords, &mut rng);
    let csr = w.csr();
    let x = Matrix::random_uniform(batch, n, 1.0, &mut rng);
    let mut scratch = Scratch::new();

    // The bench is only meaningful if the two sides compute the same thing;
    // the kernels' contract is bit-identity on the sparse term.
    let naive = w.matmul_batch(&x);
    let fused = fused_block_forward(&csr, w.data(), None, None, &x, &mut scratch);
    assert_eq!(
        naive.as_slice(),
        fused.as_slice(),
        "fused kernel must be bit-identical to naive at block {block}"
    );

    // Budget iterations by touched payload so each point takes a comparable
    // wall-clock slice: ~300M multiply-adds per measurement at scale 1.
    let work = (csr.nnz_blocks() * block * block * batch).max(1);
    let iters = (((300_000_000.0 * iters_scale) / work as f64) as usize).clamp(3, 300);

    let (naive_us, fused_us) = time_pair_us(
        iters,
        || {
            black_box(w.matmul_batch(&x));
        },
        || {
            black_box(fused_block_forward(&csr, w.data(), None, None, &x, &mut scratch));
        },
    );

    SweepPoint {
        n,
        block,
        density_pct,
        nnz_blocks: csr.nnz_blocks(),
        batch,
        naive_us,
        fused_us,
        speedup: speedup(naive_us, fused_us),
    }
}

/// The pre-fusion pixelfly affine: naive matmul-per-block, then two dense
/// low-rank passes through freshly allocated matrices, then the bias — the
/// exact shape of the hot path before the fused kernels landed.
fn naive_pixelfly(
    w: &BlockSparseMatrix,
    u: &[f32],
    v: &[f32],
    rank: usize,
    bias: &[f32],
    x: &Matrix,
) -> Matrix {
    let mut y = w.matmul_batch(x);
    let vx = matmul_a_bt_slice(x, v, rank);
    let uvx = matmul_a_bt_slice(&vx, u, y.cols());
    for (yrow, (urow, b)) in y
        .as_mut_slice()
        .chunks_exact_mut(bias.len())
        .zip(uvx.as_slice().chunks_exact(bias.len()).zip(std::iter::repeat(bias)))
    {
        for (yv, (uv, bv)) in yrow.iter_mut().zip(urow.iter().zip(b)) {
            *yv += uv + bv;
        }
    }
    y
}

fn pixelfly_point(n: usize, batch: usize, iters_scale: f64) -> PixelflyPoint {
    let config = PixelflyConfig::paper_default();
    let grid = n / config.block_size;
    let coords = flat_butterfly_mask(grid, config.butterfly_size);
    let mut rng = seeded_rng(0x9D2E);
    let w = BlockSparseMatrix::random(n, n, config.block_size, coords, &mut rng);
    let csr = w.csr();
    let rank = config.rank;
    let scale = 1.0 / ((n * rank) as f32).sqrt();
    let u: Vec<f32> = (0..n * rank).map(|_| rng.gen_range(-scale..=scale)).collect();
    let v: Vec<f32> = (0..rank * n).map(|_| rng.gen_range(-scale..=scale)).collect();
    let bias: Vec<f32> = (0..n).map(|i| 0.01 * (i as f32).cos()).collect();
    let lr = LowRankRef { u: &u, v: &v, rank };
    let x = Matrix::random_uniform(batch, n, 1.0, &mut rng);
    let mut scratch = Scratch::new();

    // The low-rank term uses a different (deterministic, lane-tree)
    // summation order than the naive dense passes, so the full forward is
    // checked to a relative tolerance rather than bit-identity.
    let naive = naive_pixelfly(&w, &u, &v, rank, &bias, &x);
    let fused = fused_block_forward(&csr, w.data(), Some(lr), Some(&bias), &x, &mut scratch);
    for (a, b) in naive.as_slice().iter().zip(fused.as_slice()) {
        let tol = 1e-4 * a.abs().max(1.0);
        assert!((a - b).abs() <= tol, "pixelfly fused diverged: naive {a} vs fused {b}");
    }

    let work = (csr.nnz_blocks() * config.block_size * config.block_size + 2 * n * rank) * batch;
    let iters = (((300_000_000.0 * iters_scale) / work.max(1) as f64) as usize).clamp(3, 300);

    let (naive_us, fused_us) = time_pair_us(
        iters,
        || {
            black_box(naive_pixelfly(&w, &u, &v, rank, &bias, &x));
        },
        || {
            black_box(fused_block_forward(&csr, w.data(), Some(lr), Some(&bias), &x, &mut scratch));
        },
    );

    PixelflyPoint {
        n,
        batch,
        block_size: config.block_size,
        butterfly_size: config.butterfly_size,
        rank,
        nnz_blocks: csr.nnz_blocks(),
        naive_us,
        fused_us,
        speedup: speedup(naive_us, fused_us),
    }
}

fn main() {
    let smoke = smoke_run();
    let iters_scale = if smoke { 0.002 } else { env_f64("BFLY_BENCH_ITERS_SCALE", 1.0) };

    println!(
        "bench_blocksparse: naive matmul-per-block vs fused SIMD kernels{}\n",
        if smoke { " (smoke mode)" } else { "" }
    );

    let n = if smoke { 128 } else { 1024 };
    let blocks: &[usize] = if smoke { &[8, 32] } else { &[4, 8, 16, 32] };
    let densities: &[u64] = if smoke { &[25] } else { &[5, 25, 100] };
    let batches: &[usize] = if smoke { &[8] } else { &[1, 8, 32, 128] };

    let mut sweep = Vec::new();
    for &block in blocks {
        for &density in densities {
            for &batch in batches {
                sweep.push(sweep_point(n, block, density, batch, iters_scale));
            }
        }
    }

    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                p.block.to_string(),
                format!("{}%", p.density_pct),
                p.nnz_blocks.to_string(),
                p.batch.to_string(),
                format!("{:.1}", p.naive_us),
                format!("{:.1}", p.fused_us),
                format!("{:.2}x", p.speedup),
            ]
        })
        .collect();
    println!(
        "sparse term only, n = {n}:\n{}",
        format_table(
            &["block", "density", "nnz blocks", "batch", "naive us", "fused us", "speedup"],
            &rows
        )
    );

    let (pf_n, pf_batch) = if smoke { (256, 8) } else { (1024, 128) };
    let pixelfly = pixelfly_point(pf_n, pf_batch, iters_scale);
    println!(
        "pixelfly paper-default (block {}, butterfly {}, rank {}) n {} batch {}: \
         naive {:.1} us, fused {:.1} us ({:.2}x)",
        pixelfly.block_size,
        pixelfly.butterfly_size,
        pixelfly.rank,
        pixelfly.n,
        pixelfly.batch,
        pixelfly.naive_us,
        pixelfly.fused_us,
        pixelfly.speedup,
    );

    let output = BenchOutput { host_cores: host_cores(), sweep, pixelfly };
    println!();
    write_bench_json("blocksparse", &output, smoke);
}
