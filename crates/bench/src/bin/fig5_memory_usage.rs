//! Fig 5 — How matmul problem size affects the number of edges, variables,
//! vertices, compute sets, and available memory on the IPU.
//!
//! Expected shape (Observation 3): memory grows super-linearly in problem
//! size because vertex state, exchange code and control code grow with the
//! compiler-chosen structure (especially the number of compute sets), not
//! just with the data; available memory hits zero before the data alone
//! would fill the chip.

use bfly_bench::{fmt_bytes, format_table};
use bfly_data::square_sweep;
use bfly_ipu::{account, lower, IpuDevice};
use bfly_tensor::LinOp;

fn main() {
    let dev = IpuDevice::gc200();
    let spec = dev.spec();
    let problems = square_sweep(7, 14);

    let mut rows = Vec::new();
    for p in &problems {
        let trace = [LinOp::MatMul { m: p.m, k: p.k, n: p.n }];
        let graph = lower(&trace, spec);
        let r = account(&graph, spec);
        rows.push(vec![
            format!("2^{}", p.n.trailing_zeros()),
            r.variables.to_string(),
            r.vertices.to_string(),
            r.edges.to_string(),
            r.compute_sets.to_string(),
            fmt_bytes(r.data_bytes),
            fmt_bytes(r.overhead_bytes()),
            if r.fits() { fmt_bytes(r.free_bytes) } else { "OOM".to_string() },
        ]);
    }
    println!("Fig 5: IPU graph structure and memory vs square MM size");
    println!(
        "{}",
        format_table(
            &["N", "vars", "vertices", "edges", "compute sets", "data", "overhead", "free"],
            &rows
        )
    );
    println!(
        "Observation 3: overhead (vertex state + exchange code + control)\n\
         grows with the compiled structure, so usable memory vanishes before\n\
         the raw data footprint alone would fill the {} of on-chip SRAM.",
        fmt_bytes(spec.total_sram())
    );
}
