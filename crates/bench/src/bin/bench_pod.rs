//! bench_pod — pod-parallel serving scaling across a simulated multi-IPU
//! pod (`bfly-serve`'s replica scheduler).
//!
//! For each pod size the closed-loop generator offers an identical seeded
//! saturating workload (cache off, so every request computes), and the
//! server routes micro-batches across the pod's replica occupancy clocks.
//! Host execution is unchanged — what scales is *simulated device
//! throughput*: completed requests over the pod's simulated makespan (the
//! maximum replica clock, µs). A perfectly balanced router makes the
//! makespan shrink like 1/replicas, so the `scaling` column approaches the
//! pod size; imbalance and one-time weight loads eat into it. Butterfly and
//! dense baseline models are swept side by side: a butterfly model's
//! weights replicate across the pod's IPU-Links almost for free, while the
//! dense baseline pays ~n²·4 bytes per cold replica — the paper's
//! compression argument restated as deployment elasticity. Pixelfly (fused
//! block-sparse + low-rank) rides the same sweep now that its serve path
//! is allocation-free.
//!
//! Environment knobs: BFLY_POD_DIM (default 256), BFLY_POD_CLIENTS (default
//! 16), BFLY_POD_PER_CLIENT (default 250), BFLY_POD_WORKERS (default 2),
//! BFLY_POD_BATCH (default 32), BFLY_POD_POOL (input-reuse pool size,
//! default 64), BFLY_POD_ROUTING (rr | p2c | jsq, default p2c).
//!
//! `--smoke` (or BFLY_BENCH_SMOKE=1) runs a tiny sweep for CI and skips the
//! JSON write so checked-in numbers always come from a full run.

use bfly_bench::json::write_bench_json;
use bfly_bench::{env_u64, env_usize, host_cores, smoke_run};
use bfly_core::{Method, PixelflyConfig};
use bfly_serve::{
    closed_loop_models_with_pool, CacheConfig, LoadReport, ReplicaStats, Routing, ServeConfig,
    Server,
};
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct RunStats {
    method: String,
    replicas: usize,
    /// Completed compute requests (cache is off: every request computes).
    completed: u64,
    /// Simulated pod makespan: the maximum replica occupancy clock, µs.
    pod_makespan_us: f64,
    /// Total simulated device time retired across the pod, µs.
    total_device_us: f64,
    /// Completed requests per simulated device second: completed /
    /// (makespan µs / 1e6). The number that scales with the pod.
    sim_throughput_rps: f64,
    /// sim_throughput over the same method's pod=1 run.
    scaling: f64,
    /// Host-side wall-clock throughput (unchanged by the pod: replicas are
    /// simulated devices, the worker pool is the same).
    wall_throughput_rps: f64,
    latency_p99_us: u64,
    mean_batch: f64,
    /// One-time simulated weight-load µs paid across all cold replicas.
    weight_load_us: f64,
    cold_loads: u64,
    replicas_detail: Vec<ReplicaStats>,
}

#[derive(Serialize)]
struct BenchOutput {
    dim: usize,
    classes: usize,
    workers: usize,
    host_cores: usize,
    clients: u64,
    per_client: u64,
    max_batch: usize,
    input_pool: usize,
    routing: String,
    pod_sizes: Vec<usize>,
    results: Vec<RunStats>,
}

struct Workload {
    dim: usize,
    workers: usize,
    max_batch: usize,
    clients: u64,
    per_client: u64,
    pool: usize,
    routing: Routing,
}

fn run_once(w: &Workload, method: Method, replicas: usize) -> (LoadReport, RunStats) {
    let config = ServeConfig {
        dim: w.dim,
        classes: 10,
        seed: 0xB0D5,
        max_batch: w.max_batch,
        max_wait: Duration::from_micros(200),
        // Deep enough that the closed loop never spins on sheds.
        queue_capacity: (w.clients as usize * 4).max(256),
        workers: w.workers,
        tensor_cores: false,
        // Cache off: every request must compute, so completed requests map
        // 1:1 onto simulated device work and the scaling number is honest.
        cache: CacheConfig::disabled(),
        replicas,
        routing: w.routing,
        ..Default::default()
    };
    let name = method.label().to_lowercase();
    let server = Server::start(config, &[method]).expect("dim must fit the method");
    let report = closed_loop_models_with_pool(
        &server,
        &[name.as_str()],
        w.clients,
        w.per_client,
        0xBEE5,
        w.pool,
    );
    let snapshot = server.shutdown();
    let makespan_us = snapshot.pod_makespan_us;
    let sim_throughput =
        if makespan_us > 0.0 { report.completed as f64 / (makespan_us / 1e6) } else { 0.0 };
    let stats = RunStats {
        method: name,
        replicas,
        completed: report.completed,
        pod_makespan_us: makespan_us,
        total_device_us: snapshot.total_device_us,
        sim_throughput_rps: sim_throughput,
        scaling: 1.0, // filled in against the pod=1 run by the sweep
        wall_throughput_rps: report.throughput_rps,
        latency_p99_us: report.latency_p99_us,
        mean_batch: report.mean_batch,
        weight_load_us: snapshot.replicas.iter().map(|r| r.weight_load_us).sum(),
        cold_loads: snapshot.replicas.iter().map(|r| r.cold_loads).sum(),
        replicas_detail: snapshot.replicas,
    };
    (report, stats)
}

fn main() {
    let smoke = smoke_run();
    let workload = Workload {
        dim: env_usize("BFLY_POD_DIM", 256),
        workers: env_usize("BFLY_POD_WORKERS", 2),
        max_batch: env_usize("BFLY_POD_BATCH", 32),
        clients: env_u64("BFLY_POD_CLIENTS", if smoke { 4 } else { 16 }),
        per_client: env_u64("BFLY_POD_PER_CLIENT", if smoke { 25 } else { 250 }),
        pool: env_usize("BFLY_POD_POOL", 64),
        routing: std::env::var("BFLY_POD_ROUTING")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default(),
    };
    let host_cores = host_cores();
    let pod_sizes: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] };

    println!(
        "bench_pod: dim {}, {} clients x {} requests, batch {}, {} workers, \
         routing {}, host cores {}{}\n",
        workload.dim,
        workload.clients,
        workload.per_client,
        workload.max_batch,
        workload.workers,
        workload.routing.label(),
        host_cores,
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>10} {:>4} {:>9} {:>14} {:>14} {:>8} {:>12} {:>10} {:>6}",
        "method",
        "pod",
        "requests",
        "makespan us",
        "sim rps",
        "scaling",
        "load us",
        "min util",
        "cold"
    );

    let mut results = Vec::new();
    let methods =
        [Method::Butterfly, Method::Baseline, Method::Pixelfly(PixelflyConfig::paper_default())];
    for &method in &methods {
        let mut base_throughput = 0.0f64;
        for &replicas in &pod_sizes {
            let (_, mut stats) = run_once(&workload, method, replicas);
            if replicas == 1 {
                base_throughput = stats.sim_throughput_rps;
            }
            stats.scaling = if base_throughput > 0.0 {
                stats.sim_throughput_rps / base_throughput
            } else {
                0.0
            };
            let min_util =
                stats.replicas_detail.iter().map(|r| r.utilization).fold(f64::INFINITY, f64::min);
            println!(
                "{:>10} {:>4} {:>9} {:>14.0} {:>14.0} {:>7.2}x {:>12.1} {:>10.3} {:>6}",
                stats.method,
                replicas,
                stats.completed,
                stats.pod_makespan_us,
                stats.sim_throughput_rps,
                stats.scaling,
                stats.weight_load_us,
                min_util,
                stats.cold_loads,
            );
            results.push(stats);
        }
    }

    println!();
    let output = BenchOutput {
        dim: workload.dim,
        classes: 10,
        workers: workload.workers,
        host_cores,
        clients: workload.clients,
        per_client: workload.per_client,
        max_batch: workload.max_batch,
        input_pool: workload.pool,
        routing: workload.routing.label().to_string(),
        pod_sizes,
        results,
    };
    write_bench_json("pod", &output, smoke);
}
