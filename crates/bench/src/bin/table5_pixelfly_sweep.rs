//! Table 5 — Parameter sweep for pixelfly on the IPU: vary one of
//! {butterfly size, block size, low-rank size} while holding the other two
//! fixed, for every combination of the fixed values; report the mean and
//! the maximum standard deviation of execution time, accuracy and N_Params.
//!
//! Expected shape (paper §5):
//! - low-rank size has the *smallest* influence on execution time (it runs
//!   as an AMP-friendly dense matmul) but the *largest* on accuracy;
//! - block size has the greatest impact on execution time;
//! - butterfly size has the biggest impact on the parameter count among the
//!   structured-term knobs;
//! - no configuration is optimal for all three metrics at once.
//!
//! Environment knobs: BFLY_SAMPLES (default 1500), BFLY_EPOCHS (default 4).

use bfly_bench::simtime::simulated_training_seconds;
use bfly_bench::{format_table, mean_std};
use bfly_core::{build_shl, shl_param_count, Method, PixelflyConfig};
use bfly_data::{generate, split, SynthSpec};
use bfly_gpu::GpuDevice;
use bfly_ipu::IpuDevice;
use bfly_nn::{fit, Layer, TrainConfig};
use bfly_tensor::seeded_rng;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Metrics of one trained pixelfly configuration.
struct Outcome {
    time_s: f64,
    accuracy: f64,
    n_params: f64,
}

fn run_config(
    config: PixelflyConfig,
    data: &bfly_data::Dataset,
    epochs: usize,
    gpu: &GpuDevice,
    ipu: &IpuDevice,
) -> Option<Outcome> {
    let dim = 1024;
    let classes = 10;
    let batch = 50;
    let method = Method::Pixelfly(config);
    let mut rng = seeded_rng(11);
    let s = split(data.clone(), 0.2, 0.15, &mut rng);
    let mut model = build_shl(method, dim, classes, &mut rng).ok()?;
    let report = fit(&mut model, &s, &TrainConfig { epochs, seed: 12, ..TrainConfig::default() });
    let forward = model.trace(batch);
    let (_, _, t_ipu) =
        simulated_training_seconds(&forward, batch, dim, report.steps, epochs, gpu, ipu);
    Some(Outcome {
        time_s: t_ipu,
        accuracy: report.test_accuracy * 100.0,
        n_params: shl_param_count(method, dim, classes) as f64,
    })
}

/// For each combination of fixed parameters, sweeps the varied one and
/// returns `(overall mean per metric, max std per metric)` as in Table 5.
fn sweep(
    label: &str,
    combos: &[Vec<PixelflyConfig>],
    data: &bfly_data::Dataset,
    epochs: usize,
    gpu: &GpuDevice,
    ipu: &IpuDevice,
) -> Vec<Vec<String>> {
    let mut all_means = (Vec::new(), Vec::new(), Vec::new());
    let mut max_std = (0.0f64, 0.0f64, 0.0f64);
    for configs in combos {
        let outcomes: Vec<Outcome> =
            configs.iter().filter_map(|&c| run_config(c, data, epochs, gpu, ipu)).collect();
        if outcomes.len() < 2 {
            continue;
        }
        let times: Vec<f64> = outcomes.iter().map(|o| o.time_s).collect();
        let accs: Vec<f64> = outcomes.iter().map(|o| o.accuracy).collect();
        let params: Vec<f64> = outcomes.iter().map(|o| o.n_params).collect();
        let (tm, ts) = mean_std(&times);
        let (am, as_) = mean_std(&accs);
        let (pm, ps) = mean_std(&params);
        all_means.0.push(tm);
        all_means.1.push(am);
        all_means.2.push(pm);
        max_std.0 = max_std.0.max(ts);
        max_std.1 = max_std.1.max(as_);
        max_std.2 = max_std.2.max(ps);
    }
    let avg = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    vec![
        vec![
            label.into(),
            "Time[s]".into(),
            format!("{:.3}", avg(&all_means.0)),
            format!("{:.3}", max_std.0),
        ],
        vec![
            String::new(),
            "Accuracy[%]".into(),
            format!("{:.1}", avg(&all_means.1)),
            format!("{:.1}", max_std.1),
        ],
        vec![
            String::new(),
            "N_Params".into(),
            format!("{:.0}", avg(&all_means.2)),
            format!("{:.0}", max_std.2),
        ],
    ]
}

fn main() {
    let samples = env_usize("BFLY_SAMPLES", 1500);
    let epochs = env_usize("BFLY_EPOCHS", 4);
    let gpu = GpuDevice::a30();
    let ipu = IpuDevice::gc200();
    let data = generate(&SynthSpec::cifar10_like(samples, 100));

    println!("Table 5: pixelfly parameter sweep on the IPU ({samples} samples, {epochs} epochs)\n");

    // Vary butterfly size; fixed: block in {8, 16, 32}, rank = 2.
    let bf_combos: Vec<Vec<PixelflyConfig>> = [8usize, 16, 32]
        .iter()
        .map(|&block| {
            let grid = 1024 / block;
            [2usize, 4, 8, 16, 32]
                .iter()
                .filter(|&&bf| bf <= grid)
                .map(|&bf| PixelflyConfig { block_size: block, butterfly_size: bf, rank: 2 })
                .collect()
        })
        .collect();

    // Vary block size; fixed: butterfly = 2, rank in {4, 64, 128}.
    let block_combos: Vec<Vec<PixelflyConfig>> = [4usize, 64, 128]
        .iter()
        .map(|&rank| {
            [4usize, 8, 16, 32, 64]
                .iter()
                .map(|&block| PixelflyConfig { block_size: block, butterfly_size: 2, rank })
                .collect()
        })
        .collect();

    // Vary low-rank size; fixed: (butterfly, block) in {(4,16), (8,8), (16,16)}.
    let rank_combos: Vec<Vec<PixelflyConfig>> = [(4usize, 16usize), (8, 8), (16, 16)]
        .iter()
        .map(|&(bf, block)| {
            [2usize, 4, 16, 64, 128]
                .iter()
                .map(|&rank| PixelflyConfig { block_size: block, butterfly_size: bf, rank })
                .collect()
        })
        .collect();

    let mut rows = Vec::new();
    rows.extend(sweep("butterfly var.", &bf_combos, &data, epochs, &gpu, &ipu));
    rows.extend(sweep("block var.", &block_combos, &data, epochs, &gpu, &ipu));
    rows.extend(sweep("low-rank var.", &rank_combos, &data, epochs, &gpu, &ipu));

    println!("{}", format_table(&["varied", "metric", "mean", "max std"], &rows));

    println!("paper (Table 5, means/stds over their combos):");
    println!("  butterfly var.: Time 372+-107, Acc 43.8+-2.2, N_Params 1064970+-326625");
    println!("  block var.    : Time 465+-192, Acc 38.9+-1.4, N_Params  81930+-184638");
    println!("  low-rank var. : Time 465+-18,  Acc 37.8+-2.7, N_Params 344074+-181317");
    println!();
    println!("shape checks (paper §5):");
    let std_of = |metric_rows: &[Vec<String>], idx: usize| -> f64 {
        metric_rows[idx][3].parse().unwrap_or(f64::NAN)
    };
    let time_stds = [std_of(&rows, 0), std_of(&rows, 3), std_of(&rows, 6)];
    println!(
        "  low-rank size has the smallest influence on time: {} (stds: bfly {:.3}, block {:.3}, rank {:.3})",
        if time_stds[2] <= time_stds[0] && time_stds[2] <= time_stds[1] { "CONFIRMED" } else { "DIFFERS" },
        time_stds[0], time_stds[1], time_stds[2]
    );
    let acc_stds = [std_of(&rows, 1), std_of(&rows, 4), std_of(&rows, 7)];
    println!(
        "  low-rank size has the biggest impact on accuracy: {} (stds: bfly {:.1}, block {:.1}, rank {:.1})",
        if acc_stds[2] >= acc_stds[0] && acc_stds[2] >= acc_stds[1] { "CONFIRMED" } else { "DIFFERS" },
        acc_stds[0], acc_stds[1], acc_stds[2]
    );
    println!("  (per §5, pick the configuration by the primary target — no single optimum.)");
}
