//! Fig 7 — Number of compute sets and total memory consumption on the IPU
//! versus square problem size, for Linear, butterfly and pixelfly.
//!
//! Expected shape (paper §4.1): "the number of compute sets exhibits a
//! significant correlation with the number of variables, edges, and
//! vertices" — butterfly compiles to one compute set per factor
//! (log2 N + overheads), pixelfly to a handful, Linear to one or two; total
//! memory tracks the compiled structure, not just the tensors.

use bfly_bench::{fmt_bytes, format_table};
use bfly_core::{PixelflyConfig, PixelflyLayer};
use bfly_ipu::{account, lower, IpuDevice};
use bfly_nn::{Dense, Layer};
use bfly_tensor::{seeded_rng, LinOp};

fn main() {
    let dev = IpuDevice::gc200();
    let spec = dev.spec();
    let mut rng = seeded_rng(7);

    let mut rows = Vec::new();
    for e in 7..=13u32 {
        let n = 1usize << e;
        let linear = Dense::new(n, n, &mut rng).trace(n);
        let mut butterfly = vec![LinOp::Permute { rows: n, width: n }];
        for _ in 0..n.trailing_zeros() {
            butterfly.push(LinOp::Twiddle { pairs: n / 2, batch: n });
        }
        butterfly.push(LinOp::Elementwise { n: n * n, flops_per_elem: 1 });
        let mut config = PixelflyConfig::paper_default();
        while n / config.block_size < config.butterfly_size {
            if config.block_size > 2 {
                config.block_size /= 2;
            } else {
                config.butterfly_size /= 2;
            }
        }
        config.rank = config.rank.min(n / 8);
        let pixelfly =
            PixelflyLayer::new(n, n, config, &mut rng).expect("power-of-two dims").trace(n);

        let report = |trace: &[LinOp]| {
            let g = lower(trace, spec);
            account(&g, spec)
        };
        let rl = report(&linear);
        let rb = report(&butterfly);
        let rp = report(&pixelfly);
        rows.push(vec![
            format!("2^{e}"),
            rl.compute_sets.to_string(),
            rb.compute_sets.to_string(),
            rp.compute_sets.to_string(),
            fmt_bytes(rl.total_bytes),
            fmt_bytes(rb.total_bytes),
            fmt_bytes(rp.total_bytes),
        ]);
    }
    println!("Fig 7: compute sets and total memory vs N (batch = N) on the IPU\n");
    println!(
        "{}",
        format_table(
            &["N", "CS lin", "CS bfly", "CS pixel", "mem lin", "mem bfly", "mem pixel"],
            &rows
        )
    );
    println!(
        "butterfly needs one compute set per factor (log2 N of them); the\n\
         correlated growth of variables/edges/vertices drives its memory\n\
         overhead — but its *data* is O(N log N) instead of O(N^2), which is\n\
         why it keeps fitting after Linear goes out of memory."
    );
}
