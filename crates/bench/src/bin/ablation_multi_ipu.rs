//! Ablation — multi-IPU data-parallel scaling (the paper's future work:
//! "scaling to multiple IPUs").
//!
//! Compares the dense SHL hidden layer against its butterfly replacement on
//! pods of 1..8 GC200s: per-step time and scaling efficiency. The butterfly
//! side has two advantages the model exposes: (1) its gradients are ~100x
//! smaller, so the ring allreduce is nearly free, and (2) the per-device
//! memory headroom lets much larger models scale at all.

use bfly_bench::format_table;
use bfly_ipu::multi::{data_parallel_step, PodSpec};
use bfly_tensor::LinOp;

fn dense_trace(n: usize) -> impl Fn(usize) -> Vec<LinOp> {
    move |batch| vec![LinOp::MatMul { m: batch, k: n, n }]
}

fn butterfly_trace(n: usize) -> impl Fn(usize) -> Vec<LinOp> {
    move |batch| {
        let mut ops = vec![LinOp::Permute { rows: batch, width: n }];
        for _ in 0..n.trailing_zeros() {
            ops.push(LinOp::Twiddle { pairs: n / 2, batch });
        }
        ops.push(LinOp::Elementwise { n: batch * n, flops_per_elem: 1 });
        ops
    }
}

fn main() {
    let n = 8192usize;
    let global_batch = 4096usize;
    let dense_grad = (4 * n * n) as u64;
    let bfly_grad = (4 * (2 * n * n.trailing_zeros() as usize + n)) as u64;

    println!(
        "Ablation: data-parallel scaling, hidden dim {n}, global batch {global_batch}\n\
         gradients: dense {} MB vs butterfly {} KB\n",
        dense_grad / (1 << 20),
        bfly_grad / 1024
    );

    let mut rows = Vec::new();
    let mut dense_single = f64::NAN;
    let mut bfly_single = f64::NAN;
    for ipus in [1usize, 2, 4, 8] {
        let pod = PodSpec::with_ipus(ipus);
        let dense = data_parallel_step(&pod, global_batch, dense_grad, &dense_trace(n));
        let bfly = data_parallel_step(&pod, global_batch, bfly_grad, &butterfly_trace(n))
            .expect("butterfly fits at every pod size");
        let (dense_cell, dense_eff) = match &dense {
            Ok(r) => {
                if ipus == 1 {
                    dense_single = r.total_seconds();
                }
                (
                    format!("{:.3} ms", r.total_seconds() * 1e3),
                    format!("{:.0}%", 100.0 * r.scaling_efficiency(dense_single)),
                )
            }
            // A per-device OOM is a real outcome: the dense layer at this
            // size only fits once the batch shards far enough.
            Err(_) => ("OOM".into(), "-".into()),
        };
        if ipus == 1 {
            bfly_single = bfly.total_seconds();
        }
        rows.push(vec![
            ipus.to_string(),
            dense_cell,
            dense_eff,
            format!("{:.3} ms", bfly.total_seconds() * 1e3),
            format!("{:.0}%", 100.0 * bfly.scaling_efficiency(bfly_single)),
        ]);
    }
    println!(
        "{}",
        format_table(&["IPUs", "dense step", "dense eff", "butterfly step", "bfly eff"], &rows)
    );
    println!(
        "shape: butterfly sustains near-linear scaling (tiny allreduce); the dense\n\
         layer loses efficiency to gradient synchronisation as devices are added."
    );
}
