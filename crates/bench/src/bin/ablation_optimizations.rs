//! Ablation — the "possible optimizations" the paper's contribution list
//! alludes to (§1: "a brief discussion of an analysis of parameter effects
//! and possible optimizations for butterfly on the IPU"), made concrete:
//!
//! 1. **GPU: CUDA-graph-style launch elimination.** Fig 6's small-N
//!    butterfly penalty is almost entirely kernel-launch latency; capturing
//!    the log N kernels in a graph amortises it. We sweep the launch cost
//!    from 10 us down to 0.5 us and watch the break-even point move.
//! 2. **IPU: butterfly-factor fusion.** Each factor currently costs one
//!    compute set + exchange; a fused codelet applying `f` consecutive
//!    factors per superstep divides that overhead by `f` (radix-2^f
//!    butterflies — exactly how high-radix FFTs beat radix-2).

use bfly_bench::{fmt_time, format_table};
use bfly_gpu::{GpuDevice, GpuSpec};
use bfly_ipu::IpuDevice;
use bfly_tensor::LinOp;

fn dense_trace(n: usize, batch: usize) -> Vec<LinOp> {
    vec![LinOp::MatMul { m: batch, k: n, n }]
}

/// Butterfly trace with `fuse` factors merged per op.
fn butterfly_trace_fused(n: usize, batch: usize, fuse: usize) -> Vec<LinOp> {
    let stages = n.trailing_zeros() as usize;
    let mut ops = vec![LinOp::Permute { rows: batch, width: n }];
    let mut left = stages;
    while left > 0 {
        let f = fuse.min(left);
        // A fused op does f factors' worth of twiddle work in one pass.
        ops.push(LinOp::Twiddle { pairs: f * n / 2, batch });
        left -= f;
    }
    ops.push(LinOp::Elementwise { n: batch * n, flops_per_elem: 1 });
    ops
}

fn main() {
    println!("Ablation 1: CUDA-graph capture of the butterfly's kernel chain\n");
    // The dense layer is a single cuBLAS kernel either way; graph capture
    // only helps the multi-kernel butterfly, so it is priced with the
    // reduced per-kernel dispatch cost while Linear keeps the default.
    let gpu_plain = GpuDevice::a30();
    let mut rows = Vec::new();
    for &launch_us in &[10.0f64, 2.0, 0.5] {
        let spec = GpuSpec { kernel_launch_seconds: launch_us * 1e-6, ..GpuSpec::a30() };
        let gpu_graph = GpuDevice::with_spec(spec);
        let mut break_even = None;
        let mut worst = 0.0f64;
        for e in 6..=13u32 {
            let n = 1usize << e;
            let d = gpu_plain.run(&dense_trace(n, n), false).expect("fits").seconds();
            let b = gpu_graph.run(&butterfly_trace_fused(n, n, 1), false).expect("fits").seconds();
            worst = worst.max(b / d);
            if break_even.is_none() && b <= d {
                break_even = Some(e);
            }
        }
        rows.push(vec![
            format!("{launch_us} us"),
            break_even.map(|e| format!("2^{e}")).unwrap_or_else(|| "-".into()),
            format!("{worst:.1}x"),
        ]);
    }
    println!(
        "{}",
        format_table(&["butterfly dispatch cost", "break-even N", "worst degradation"], &rows)
    );
    println!(
        "=> graph-captured dispatch pulls the butterfly's break-even from 2^11\n\
         down toward 2^6 and erases the 15x small-N penalty — Fig 6's GPU\n\
         overhead is a software artefact, not compute.\n"
    );

    println!("Ablation 2: IPU butterfly-factor fusion (batch = N)\n");
    let ipu = IpuDevice::gc200();
    let mut rows = Vec::new();
    for e in [8u32, 10, 12] {
        let n = 1usize << e;
        let host = (4 * n * n) as u64;
        let dense =
            ipu.run_with_host_io(&dense_trace(n, n), host).expect("fits").seconds(ipu.spec());
        let mut cells = vec![format!("2^{e}"), fmt_time(dense)];
        for fuse in [1usize, 2, 4] {
            let t = ipu
                .run_with_host_io(&butterfly_trace_fused(n, n, fuse), host)
                .expect("fits")
                .seconds(ipu.spec());
            cells.push(format!("{} (S={:.2})", fmt_time(t), dense / t));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        format_table(&["N", "Linear", "bfly fuse=1", "bfly fuse=2", "bfly fuse=4"], &rows)
    );
    println!(
        "=> fusing factors into radix-4/radix-16 supersteps trims the per-compute-set\n\
         overhead and exchange count, pushing the IPU break-even below 2^10 —\n\
         the optimization headroom the paper's conclusion points at."
    );
}
