//! bench_chaos — serving throughput under injected replica faults
//! (`bfly-serve`'s deterministic fault plans).
//!
//! A calibration run first measures the fault-free simulated device work of
//! the workload on the pod; seeded crash/recovery schedules are then placed
//! at fractions of that horizon so the faults land *inside* the run
//! whatever the host machine's speed. For each crash count the same seeded
//! closed-loop workload replays and the sweep records what degraded
//! serving costs: completed vs failed requests, batches stranded by
//! crashes and retried on survivors, the cold weight loads recovered
//! replicas re-pay, and simulated throughput relative to the fault-free
//! run. Butterfly and dense baseline models are swept side by side — a
//! recovered butterfly replica re-warms its factorized weights orders of
//! magnitude cheaper than the dense baseline's ~n²·4-byte reload, so
//! compression shows up again as *recovery* elasticity, not just capacity.
//!
//! Environment knobs: BFLY_CHAOS_DIM (default 256), BFLY_CHAOS_CLIENTS
//! (default 16), BFLY_CHAOS_PER_CLIENT (default 250), BFLY_CHAOS_WORKERS
//! (default 2), BFLY_CHAOS_BATCH (default 32), BFLY_CHAOS_POOL (default
//! 64), BFLY_CHAOS_REPLICAS (default 4), BFLY_CHAOS_ROUTING (rr | p2c |
//! jsq, default p2c), BFLY_CHAOS_SEED (fault-plan seed, default 7).
//!
//! `--smoke` (or BFLY_BENCH_SMOKE=1) runs a tiny sweep for CI and skips the
//! JSON write so checked-in numbers always come from a full run.

use bfly_bench::json::write_bench_json;
use bfly_bench::{env_u64, env_usize, host_cores, smoke_run};
use bfly_core::Method;
use bfly_serve::{
    closed_loop_models_with_pool, CacheConfig, FaultPlan, LoadReport, ReplicaStats, Routing,
    ServeConfig, Server,
};
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize, Clone)]
struct RunStats {
    method: String,
    /// Crash/recovery pairs injected (0 = the fault-free calibration run).
    faults: usize,
    replicas: usize,
    /// Responses received, successes and failures alike.
    completed: u64,
    /// Requests answered or refused PodDown (whole pod transiently dark).
    pod_down: u64,
    /// Batches stranded by a crash and re-run on a survivor.
    retried_batches: u64,
    crashes: u64,
    recoveries: u64,
    /// Cold weight loads paid, including every re-warm after a recovery.
    cold_loads: u64,
    /// Simulated µs spent re-loading weights across the run.
    weight_load_us: f64,
    /// Simulated pod makespan: the maximum replica occupancy clock, µs.
    pod_makespan_us: f64,
    /// Successful requests per simulated device second.
    sim_throughput_rps: f64,
    /// sim_throughput over the same method's fault-free run: what the
    /// injected faults cost.
    vs_fault_free: f64,
    wall_throughput_rps: f64,
    latency_p99_us: u64,
    replicas_detail: Vec<ReplicaStats>,
}

#[derive(Serialize)]
struct BenchOutput {
    dim: usize,
    classes: usize,
    workers: usize,
    host_cores: usize,
    clients: u64,
    per_client: u64,
    max_batch: usize,
    input_pool: usize,
    replicas: usize,
    routing: String,
    fault_seed: u64,
    /// Fault-free simulated device work the schedules were calibrated
    /// against, µs per method.
    calibration_horizon_us: Vec<(String, f64)>,
    fault_counts: Vec<usize>,
    results: Vec<RunStats>,
}

struct Workload {
    dim: usize,
    workers: usize,
    max_batch: usize,
    clients: u64,
    per_client: u64,
    pool: usize,
    replicas: usize,
    routing: Routing,
    fault_seed: u64,
}

fn run_once(
    w: &Workload,
    method: Method,
    faults: usize,
    plan: FaultPlan,
) -> (LoadReport, RunStats) {
    let config = ServeConfig {
        dim: w.dim,
        classes: 10,
        seed: 0xB0D5,
        max_batch: w.max_batch,
        max_wait: Duration::from_micros(200),
        queue_capacity: (w.clients as usize * 4).max(256),
        workers: w.workers,
        tensor_cores: false,
        // Cache off: every request must compute, so completed requests map
        // 1:1 onto simulated device work and the degradation is honest.
        cache: CacheConfig::disabled(),
        replicas: w.replicas,
        routing: w.routing,
        fault_plan: plan,
        ..Default::default()
    };
    let name = method.label().to_lowercase();
    let server = Server::start(config, &[method]).expect("dim must fit the method");
    let report = closed_loop_models_with_pool(
        &server,
        &[name.as_str()],
        w.clients,
        w.per_client,
        0xBEE5,
        w.pool,
    );
    let snapshot = server.shutdown();
    let makespan_us = snapshot.pod_makespan_us;
    let succeeded = report.completed - report.pod_down - report.deadline_exceeded;
    let sim_throughput =
        if makespan_us > 0.0 { succeeded as f64 / (makespan_us / 1e6) } else { 0.0 };
    let stats = RunStats {
        method: name,
        faults,
        replicas: w.replicas,
        completed: report.completed,
        pod_down: report.pod_down,
        retried_batches: snapshot.replicas.iter().map(|r| r.retried_batches).sum(),
        crashes: snapshot.replicas.iter().map(|r| r.crashes).sum(),
        recoveries: snapshot.replicas.iter().map(|r| r.recoveries).sum(),
        cold_loads: snapshot.replicas.iter().map(|r| r.cold_loads).sum(),
        weight_load_us: snapshot.replicas.iter().map(|r| r.weight_load_us).sum(),
        pod_makespan_us: makespan_us,
        sim_throughput_rps: sim_throughput,
        vs_fault_free: 1.0, // filled in against the faults=0 run by the sweep
        wall_throughput_rps: report.throughput_rps,
        latency_p99_us: report.latency_p99_us,
        replicas_detail: snapshot.replicas,
    };
    (report, stats)
}

fn main() {
    let smoke = smoke_run();
    let workload = Workload {
        dim: env_usize("BFLY_CHAOS_DIM", 256),
        workers: env_usize("BFLY_CHAOS_WORKERS", 2),
        max_batch: env_usize("BFLY_CHAOS_BATCH", 32),
        clients: env_u64("BFLY_CHAOS_CLIENTS", if smoke { 4 } else { 16 }),
        per_client: env_u64("BFLY_CHAOS_PER_CLIENT", if smoke { 25 } else { 250 }),
        pool: env_usize("BFLY_CHAOS_POOL", 64),
        replicas: env_usize("BFLY_CHAOS_REPLICAS", if smoke { 2 } else { 4 }),
        routing: std::env::var("BFLY_CHAOS_ROUTING")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default(),
        fault_seed: env_u64("BFLY_CHAOS_SEED", 7),
    };
    let host_cores = host_cores();
    let fault_counts: Vec<usize> = if smoke { vec![0, 2] } else { vec![0, 2, 4, 8] };

    println!(
        "bench_chaos: dim {}, {} clients x {} requests, batch {}, {} workers, \
         pod {}, routing {}, fault seed {}, host cores {}{}\n",
        workload.dim,
        workload.clients,
        workload.per_client,
        workload.max_batch,
        workload.workers,
        workload.replicas,
        workload.routing.label(),
        workload.fault_seed,
        host_cores,
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>10} {:>7} {:>9} {:>8} {:>8} {:>8} {:>6} {:>12} {:>14} {:>9}",
        "method",
        "faults",
        "requests",
        "pod_down",
        "retried",
        "crashes",
        "cold",
        "load us",
        "sim rps",
        "vs clean"
    );

    let mut calibration = Vec::new();
    let mut results = Vec::new();
    for &method in &[Method::Butterfly, Method::Baseline] {
        // Calibration: the fault-free run both anchors vs_fault_free and
        // measures the simulated-work horizon the crash schedules target.
        let (_, clean) = run_once(&workload, method, 0, FaultPlan::none());
        let horizon_us = clean.total_presented_us();
        calibration.push((clean.method.clone(), horizon_us));
        let clean_throughput = clean.sim_throughput_rps;
        for &faults in &fault_counts {
            let stats = if faults == 0 {
                // Reuse the calibration run rather than re-measuring it.
                let mut s = clean.clone();
                s.vs_fault_free = 1.0;
                s
            } else {
                // Crashes at fractions of the measured horizon, so they
                // fire mid-run on any host.
                let plan = FaultPlan::seeded(
                    workload.fault_seed,
                    workload.replicas,
                    horizon_us * 0.8,
                    faults,
                );
                let (_, mut s) = run_once(&workload, method, faults, plan);
                s.vs_fault_free = if clean_throughput > 0.0 {
                    s.sim_throughput_rps / clean_throughput
                } else {
                    0.0
                };
                s
            };
            println!(
                "{:>10} {:>7} {:>9} {:>8} {:>8} {:>8} {:>6} {:>12.1} {:>14.0} {:>8.2}x",
                stats.method,
                stats.faults,
                stats.completed,
                stats.pod_down,
                stats.retried_batches,
                stats.crashes,
                stats.cold_loads,
                stats.weight_load_us,
                stats.sim_throughput_rps,
                stats.vs_fault_free,
            );
            results.push(stats);
        }
        println!();
    }

    let output = BenchOutput {
        dim: workload.dim,
        classes: 10,
        workers: workload.workers,
        host_cores,
        clients: workload.clients,
        per_client: workload.per_client,
        max_batch: workload.max_batch,
        input_pool: workload.pool,
        replicas: workload.replicas,
        routing: workload.routing.label().to_string(),
        fault_seed: workload.fault_seed,
        calibration_horizon_us: calibration,
        fault_counts,
        results,
    };
    write_bench_json("chaos", &output, smoke);
}

impl RunStats {
    /// The simulated compute the run *presented* to the pod: what the
    /// fault plan's clock counts, i.e. retired work net of weight loads.
    fn total_presented_us(&self) -> f64 {
        let retired: f64 = self.replicas_detail.iter().map(|r| r.device_us).sum();
        (retired - self.weight_load_us).max(0.0)
    }
}
