//! serve_throughput — quantifies the dynamic-batching win of `bfly-serve`.
//!
//! For each registry (dense baseline, butterfly, pixelfly) the harness
//! floods a server with the same offered load twice: once with batching
//! disabled (`max_batch = 1`) and once with the micro-batcher on
//! (`max_batch = 32`). Compressed models are dispatch-bound — their forward
//! pass is tiny, so per-request wakeups, locks and allocations dominate —
//! which is exactly what coalescing amortises; the dense baseline is
//! compute-bound and gains far less. Results (throughput, latency
//! percentiles, mean batch size, shed rate) are printed as a table and
//! written to `BENCH_serve.json` so later runs can track serving
//! performance.
//!
//! The default serving dimension is 256 (an embedding-sized model, the
//! dispatch-bound regime where batching matters); BFLY_SERVE_DIM=1024 runs
//! the Table 4 shape, where the compressed forward pass itself is large
//! enough that the batching win shrinks.
//!
//! Environment knobs: BFLY_SERVE_DIM (default 256), BFLY_SERVE_REQUESTS
//! (default 4000), BFLY_SERVE_RATE (offered requests/s, default 1e6 ~
//! burst), BFLY_SERVE_BATCH (default 32), BFLY_SERVE_WORKERS (default 2).

use bfly_bench::json::write_bench_json;
use bfly_bench::{env_f64, env_usize, host_cores};
use bfly_core::{Method, PixelflyConfig};
use bfly_serve::{open_loop, CacheConfig, LoadReport, ServeConfig, Server};
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct RunStats {
    max_batch: usize,
    throughput_rps: f64,
    latency_p50_us: u64,
    latency_p95_us: u64,
    latency_p99_us: u64,
    mean_batch: f64,
    shed_rate: f64,
    completed: u64,
    shed: u64,
}

impl RunStats {
    fn from_report(max_batch: usize, r: &LoadReport) -> Self {
        Self {
            max_batch,
            throughput_rps: r.throughput_rps,
            latency_p50_us: r.latency_p50_us,
            latency_p95_us: r.latency_p95_us,
            latency_p99_us: r.latency_p99_us,
            mean_batch: r.mean_batch,
            shed_rate: if r.offered == 0 { 0.0 } else { r.shed as f64 / r.offered as f64 },
            completed: r.completed,
            shed: r.shed,
        }
    }
}

#[derive(Serialize)]
struct MethodResult {
    model: String,
    offered_requests: u64,
    batch1: RunStats,
    batched: RunStats,
    /// batched throughput over batch-1 throughput at equal offered load.
    speedup: f64,
}

#[derive(Serialize)]
struct BenchOutput {
    host_cores: usize,
    dim: usize,
    classes: usize,
    workers: usize,
    offered_rate_rps: f64,
    results: Vec<MethodResult>,
}

fn run_once(
    method: Method,
    dim: usize,
    max_batch: usize,
    workers: usize,
    requests: u64,
    rate: f64,
) -> LoadReport {
    let config = ServeConfig {
        dim,
        classes: 10,
        seed: 0x5E127E,
        max_batch,
        max_wait: Duration::from_micros(200),
        queue_capacity: 512,
        workers,
        tensor_cores: false,
        // This bench isolates the *batching* win; the response cache would
        // dedupe the pooled inputs and measure the cache instead (that
        // comparison lives in `bench_cache`).
        cache: CacheConfig::disabled(),
        ..Default::default()
    };
    let server = Server::start(config, &[method]).expect("BFLY_SERVE_DIM must fit every method");
    let name = server.model_names().remove(0);
    let report = open_loop(&server, &name, rate, requests, 0xBEE5);
    server.shutdown();
    report
}

fn main() {
    let dim = env_usize("BFLY_SERVE_DIM", 256);
    let requests = env_usize("BFLY_SERVE_REQUESTS", 4000) as u64;
    let rate = env_f64("BFLY_SERVE_RATE", 1e6);
    let max_batch = env_usize("BFLY_SERVE_BATCH", 32);
    let workers = env_usize("BFLY_SERVE_WORKERS", 2);

    let methods =
        [Method::Baseline, Method::Butterfly, Method::Pixelfly(PixelflyConfig::paper_default())];

    println!(
        "serve_throughput: dim {dim}, {requests} requests offered at {rate:.0} rps, \
         batch-1 vs batch-{max_batch} ({workers} workers)\n"
    );
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "model", "b1 rps", "b32 rps", "speedup", "p50 us", "p95 us", "p99 us", "mbatch"
    );

    let mut results = Vec::new();
    for method in methods {
        let r1 = run_once(method, dim, 1, workers, requests, rate);
        let rb = run_once(method, dim, max_batch, workers, requests, rate);
        let speedup =
            if r1.throughput_rps > 0.0 { rb.throughput_rps / r1.throughput_rps } else { 0.0 };
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>7.2}x {:>10} {:>10} {:>10} {:>8.1}",
            method.label(),
            r1.throughput_rps,
            rb.throughput_rps,
            speedup,
            rb.latency_p50_us,
            rb.latency_p95_us,
            rb.latency_p99_us,
            rb.mean_batch,
        );
        results.push(MethodResult {
            model: method.label().to_ascii_lowercase(),
            offered_requests: requests,
            batch1: RunStats::from_report(1, &r1),
            batched: RunStats::from_report(max_batch, &rb),
            speedup,
        });
    }

    let output = BenchOutput {
        host_cores: host_cores(),
        dim,
        classes: 10,
        workers,
        offered_rate_rps: rate,
        results,
    };
    println!();
    write_bench_json("serve", &output, false);
}
