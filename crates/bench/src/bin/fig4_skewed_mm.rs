//! Fig 4 — Skewed matrix multiply on GPU vs IPU.
//!
//! Sweeps aspect ratio `s = m/k` at constant FLOP budget. Expected shape:
//! the GPU (especially with tensor cores) loses throughput rapidly at high
//! aspect ratios in either direction, while the IPU stays flat except for
//! one sudden drop at extreme skew (the paper attributes it to a poplin
//! compiler issue; our compiler reproduces it as the scalar-codelet
//! fallback when an output dimension gets too thin).

use bfly_bench::format_table;
use bfly_data::workload::skew_sweep;
use bfly_gpu::GpuDevice;
use bfly_ipu::IpuDevice;
use bfly_tensor::LinOp;

fn main() {
    let gpu = GpuDevice::a30();
    let ipu = IpuDevice::gc200();
    let problems = skew_sweep(512, 8);

    let mut rows = Vec::new();
    let mut series: Vec<(f64, f64, f64, f64)> = Vec::new();
    for p in &problems {
        let op = LinOp::MatMul { m: p.m, k: p.k, n: p.n };
        let flops = p.flops();
        let g_fp32 = gpu.run(&[op], false).expect("fits").seconds();
        let g_tf32 = gpu.run(&[op], true).expect("fits").seconds();
        let i = ipu.run(&[op]).expect("fits");
        let i_s = i.seconds(ipu.spec());
        let gf = |s: f64| flops / s / 1e9;
        series.push((p.skewness(), gf(g_fp32), gf(g_tf32), gf(i_s)));
        rows.push(vec![
            format!("{:.4}", p.skewness()),
            format!("{}x{}x{}", p.m, p.k, p.n),
            format!("{:.0}", gf(g_fp32)),
            format!("{:.0}", gf(g_tf32)),
            format!("{:.0}", gf(i_s)),
        ]);
    }
    println!("Fig 4: skewed MM throughput (GFLOP/s) at constant FLOPs, base N=512");
    println!("{}", format_table(&["skew m/k", "shape", "GPU FP32", "GPU TF32", "IPU"], &rows));

    // Shape checks: retention at moderate skew (s = 64) and the IPU cliff.
    let mid = series.len() / 2;
    let (_, g0, t0, i0) = series[mid];
    let (_, g64, t64, i64_) =
        series.iter().copied().find(|&(s, ..)| s == 64.0).expect("sweep contains s = 64");
    println!("retention at skew s = 64 (vs square):");
    println!("  GPU FP32: {:.1}%", 100.0 * g64 / g0);
    println!("  GPU TF32: {:.1}%  (degrades fastest, as in §3.4)", 100.0 * t64 / t0);
    println!("  IPU     : {:.1}%  (flat across the plateau)", 100.0 * i64_ / i0);
    let cliff = series
        .iter()
        .zip(series.iter().skip(1))
        .find(|(a, b)| a.0 >= 1.0 && b.3 < a.3 * 0.6)
        .map(|(a, _)| a.0);
    match cliff {
        Some(s) => println!(
            "IPU compiler cliff: sudden drop beyond s = {s} \
             (paper: 'probably a compiler issue when using poplin')"
        ),
        None => println!("IPU compiler cliff: not reached in this sweep"),
    }
}
