//! Fig 3 — Latency and bandwidth within the IPU for different physical
//! proximity: a neighbouring tile pair (0, 1) versus a distant pair
//! (0, 644), over message sizes from 8 B to 1 MiB.
//!
//! Expected shape (paper Observation 1): latency and bandwidth depend only
//! on message size; the two pairs produce identical curves.

use bfly_bench::{fmt_bytes, fmt_time, format_table};
use bfly_ipu::IpuDevice;

fn main() {
    let dev = IpuDevice::gc200();
    let pairs = [(0u32, 1u32), (0, 644)];
    let sizes: Vec<u64> = (3..=20).map(|e| 1u64 << e).collect();

    let mut rows = Vec::new();
    let mut identical = true;
    for &bytes in &sizes {
        let near = dev.tile_copy(pairs[0].0, pairs[0].1, bytes);
        let far = dev.tile_copy(pairs[1].0, pairs[1].1, bytes);
        identical &= near == far;
        rows.push(vec![
            fmt_bytes(bytes),
            fmt_time(near.latency_s),
            format!("{:.2}", near.bandwidth / 1e9),
            fmt_time(far.latency_s),
            format!("{:.2}", far.bandwidth / 1e9),
        ]);
    }
    println!("Fig 3: tile-to-tile latency/bandwidth vs message size");
    println!("pairs: neighbouring (0,1) vs distant (0,644)\n");
    println!(
        "{}",
        format_table(
            &["size", "lat (0,1)", "BW GB/s (0,1)", "lat (0,644)", "BW GB/s (0,644)"],
            &rows
        )
    );
    println!(
        "Observation 1 check — curves identical across distances: {}",
        if identical { "CONFIRMED" } else { "VIOLATED" }
    );
    println!(
        "(paper: 'latency and bandwidth ... are tightly coupled with data size,\n but are independent of their location')"
    );
}
