//! bench_kernels — times the fused stage-major butterfly kernels against
//! the pre-fusion reference implementation (`bfly_bench::legacy`) on
//! identical inputs, and the lock-free serve forward path against a
//! mutex-guarded model.
//!
//! Four kernel measurements per (n, batch) point:
//!   * `apply`    — raw transform `B P x` (legacy per-row heap allocation
//!     vs the fused scratch-arena pass),
//!   * `train`    — layer forward with stage caching (legacy per-stage
//!     matrix clones vs the flat arena),
//!   * `backward` — gradient pass (legacy whole-matrix per-stage sweeps vs
//!     the fused row-major walk),
//!   * `infer`    — eval-mode forward (legacy pad + permute + stage
//!     matrices vs the single fused pass).
//!
//! The serve section runs the same offered load through a
//! `Mutex<Sequential>` (the pre-PR serialised hot path) and through the
//! shared `&Sequential` inference path with one scratch arena per thread,
//! and reports requests/second for each — for a butterfly model and for a
//! paper-default pixelfly model (whose inference forward is now the fused
//! allocation-free block-sparse kernel).
//!
//! Results print as tables and are written to `BENCH_kernels.json` at the
//! workspace root. `BFLY_BENCH_SMOKE=1` runs a seconds-long smoke version
//! (tiny sizes, few iterations) and skips the JSON write — used by CI to
//! keep the binary from rotting.
//!
//! Environment knobs: BFLY_BENCH_SMOKE (0/1), BFLY_BENCH_ITERS_SCALE
//! (default 1.0, multiplies iteration counts), BFLY_BENCH_SERVE_THREADS
//! (default 4), BFLY_BENCH_SERVE_REQUESTS (per thread, default 2000).

use bfly_bench::format_table;
use bfly_bench::json::write_bench_json;
use bfly_bench::legacy::{legacy_apply_batch, legacy_backward, legacy_forward, LegacyButterfly};
use bfly_bench::{env_f64, env_usize, host_cores, smoke_run};
use bfly_core::{
    build_shl_inference, fused_backward, fused_forward, fused_forward_train, Butterfly, Method,
};
use bfly_nn::{Layer, Sequential};
use bfly_tensor::{seeded_rng, Matrix, Scratch};
use serde::Serialize;
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Serialize)]
struct KernelPoint {
    n: usize,
    batch: usize,
    apply_legacy_us: f64,
    apply_fused_us: f64,
    apply_speedup: f64,
    train_legacy_us: f64,
    train_fused_us: f64,
    train_speedup: f64,
    backward_legacy_us: f64,
    backward_fused_us: f64,
    backward_speedup: f64,
    infer_legacy_us: f64,
    infer_fused_us: f64,
    infer_speedup: f64,
}

#[derive(Serialize)]
struct ServeComparison {
    method: String,
    dim: usize,
    classes: usize,
    threads: usize,
    requests_per_thread: usize,
    /// Hardware threads on the benchmarking host. With a single core the
    /// workers serialize and the mutex is never contended, so the
    /// locked/lock-free ratio only shows a gap on multi-core hosts.
    host_cores: usize,
    locked_rps: f64,
    lock_free_rps: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchOutput {
    host_cores: usize,
    kernels: Vec<KernelPoint>,
    serve: Vec<ServeComparison>,
}

/// Mean microseconds per call for a (legacy, fused) pair, measured in
/// strict alternation (after one untimed warm-up call each) so slow clock
/// drift — thermal throttling, frequency governors — hits both sides
/// equally instead of whichever happened to run later.
fn time_pair_us(iters: usize, mut old: impl FnMut(), mut new: impl FnMut()) -> (f64, f64) {
    old();
    new();
    let mut old_secs = 0.0;
    let mut new_secs = 0.0;
    for _ in 0..iters {
        let t = Instant::now();
        old();
        old_secs += t.elapsed().as_secs_f64();
        let t = Instant::now();
        new();
        new_secs += t.elapsed().as_secs_f64();
    }
    (old_secs * 1e6 / iters as f64, new_secs * 1e6 / iters as f64)
}

fn speedup(old_us: f64, new_us: f64) -> f64 {
    if new_us > 0.0 {
        old_us / new_us
    } else {
        0.0
    }
}

fn bench_point(n: usize, batch: usize, iters_scale: f64) -> KernelPoint {
    let mut rng = seeded_rng(0xF00D + n as u64);
    let b = Butterfly::random(n, &mut rng);
    let mut lb = LegacyButterfly::from_butterfly(&b);
    let x = Matrix::random_uniform(batch, n, 1.0, &mut rng);
    let bias = vec![0.01f32; n];

    // Budget iterations by work so every point takes a comparable slice of
    // wall clock: ~50M touched elements per measurement at scale 1.
    let work = (n * batch * n.trailing_zeros() as usize).max(1);
    let iters = (((50_000_000.0 * iters_scale) / work as f64) as usize).clamp(3, 200);

    let mut scratch = Scratch::new();
    let mut arena = Vec::new();

    let (apply_legacy_us, apply_fused_us) = time_pair_us(
        iters,
        || {
            black_box(legacy_apply_batch(&lb, &x));
        },
        || {
            black_box(b.apply_batch(&x));
        },
    );

    let (train_legacy_us, train_fused_us) = time_pair_us(
        iters,
        || {
            black_box(legacy_forward(&mut lb, &x, &bias, n, true));
        },
        || {
            black_box(fused_forward_train(
                &x,
                &b.perm,
                &b.factors,
                &bias,
                &mut arena,
                &mut scratch,
            ));
        },
    );

    // Backward consumes forward caches; build each once outside the timed
    // loop (the caches are read-only for backward).
    let (y, cache) = legacy_forward(&mut lb, &x, &bias, n, true);
    let _ = fused_forward_train(&x, &b.perm, &b.factors, &bias, &mut arena, &mut scratch);
    let mut legacy_gt: Vec<Vec<f32>> =
        b.factors.iter().map(|f| vec![0.0; f.twiddles.len()]).collect();
    let mut fused_gt: Vec<Vec<f32>> =
        b.factors.iter().map(|f| vec![0.0; f.twiddles.len()]).collect();
    let (backward_legacy_us, backward_fused_us) = time_pair_us(
        iters,
        || {
            black_box(legacy_backward(&lb, &y, &cache, n, &mut legacy_gt));
        },
        || {
            black_box(fused_backward(&y, &b.perm, &b.factors, &arena, n, |s, flat| {
                for (acc, v) in fused_gt[s].iter_mut().zip(flat) {
                    *acc += v;
                }
            }));
        },
    );

    let (infer_legacy_us, infer_fused_us) = time_pair_us(
        iters,
        || {
            black_box(legacy_forward(&mut lb, &x, &bias, n, false));
        },
        || {
            black_box(fused_forward(&x, &b.perm, &b.factors, &bias, &mut scratch));
        },
    );

    KernelPoint {
        n,
        batch,
        apply_legacy_us,
        apply_fused_us,
        apply_speedup: speedup(apply_legacy_us, apply_fused_us),
        train_legacy_us,
        train_fused_us,
        train_speedup: speedup(train_legacy_us, train_fused_us),
        backward_legacy_us,
        backward_fused_us,
        backward_speedup: speedup(backward_legacy_us, backward_fused_us),
        infer_legacy_us,
        infer_fused_us,
        infer_speedup: speedup(infer_legacy_us, infer_fused_us),
    }
}

/// One round of the mutex-serialised hot path: every request takes the lock
/// and runs an exclusive forward, as the pre-PR server did.
fn run_locked(model: &Arc<Mutex<Sequential>>, x: &Matrix, threads: usize, reqs: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let model = Arc::clone(model);
            let x = x.clone();
            s.spawn(move || {
                for _ in 0..reqs {
                    let mut m = model.lock().expect("not poisoned");
                    black_box(m.forward(&x, false));
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// One round of the lock-free hot path: the frozen model is shared through a
/// plain `Arc` and every thread owns its scratch arena.
fn run_lock_free(model: &Arc<Sequential>, x: &Matrix, threads: usize, reqs: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let model = Arc::clone(model);
            let x = x.clone();
            s.spawn(move || {
                let mut scratch = Scratch::new();
                for _ in 0..reqs {
                    black_box(model.forward_inference(&x, &mut scratch));
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// Offered-load comparison: every thread hammers the same model with
/// single-row requests, once through a mutex (the pre-PR serialised path)
/// and once lock-free. The two variants run in alternating rounds (same
/// drift argument as [`time_pair_us`]); the models are seed-identical.
fn bench_serve(
    method: Method,
    dim: usize,
    threads: usize,
    requests_per_thread: usize,
) -> ServeComparison {
    let classes = 10;
    let seed = 0x5EE5;
    let mut rng = seeded_rng(seed);
    let locked = Arc::new(Mutex::new(
        build_shl_inference(method, dim, classes, &mut rng).expect("method fits the bench dim"),
    ));
    let mut rng = seeded_rng(seed);
    let free = Arc::new(
        build_shl_inference(method, dim, classes, &mut rng).expect("method fits the bench dim"),
    );
    let x = Matrix::random_uniform(1, dim, 1.0, &mut rng);

    const ROUNDS: usize = 4;
    let per_round = (requests_per_thread / ROUNDS).max(1);
    // Warm-up round each, untimed.
    run_locked(&locked, &x, threads, per_round);
    run_lock_free(&free, &x, threads, per_round);
    let mut locked_secs = 0.0;
    let mut lock_free_secs = 0.0;
    for _ in 0..ROUNDS {
        locked_secs += run_locked(&locked, &x, threads, per_round);
        lock_free_secs += run_lock_free(&free, &x, threads, per_round);
    }

    let total = (threads * per_round * ROUNDS) as f64;
    let locked_rps = total / locked_secs;
    let lock_free_rps = total / lock_free_secs;
    ServeComparison {
        method: method.label().to_string(),
        dim,
        classes,
        threads,
        requests_per_thread,
        host_cores: host_cores(),
        locked_rps,
        lock_free_rps,
        speedup: speedup(1.0 / locked_rps, 1.0 / lock_free_rps),
    }
}

fn main() {
    let smoke = smoke_run();
    let iters_scale = if smoke { 0.001 } else { env_f64("BFLY_BENCH_ITERS_SCALE", 1.0) };
    let (sizes, batches): (&[usize], &[usize]) =
        if smoke { (&[64, 256], &[1, 8]) } else { (&[256, 1024, 4096], &[1, 8, 32, 128]) };
    let serve_threads = env_usize("BFLY_BENCH_SERVE_THREADS", if smoke { 2 } else { 4 });
    let serve_requests = env_usize("BFLY_BENCH_SERVE_REQUESTS", if smoke { 50 } else { 2000 });

    println!(
        "bench_kernels: legacy vs fused butterfly kernels{}\n",
        if smoke { " (smoke mode)" } else { "" }
    );

    let mut points = Vec::new();
    for &n in sizes {
        for &batch in batches {
            points.push(bench_point(n, batch, iters_scale));
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                p.batch.to_string(),
                format!("{:.1}", p.apply_legacy_us),
                format!("{:.1}", p.apply_fused_us),
                format!("{:.2}x", p.apply_speedup),
                format!("{:.1}", p.train_legacy_us),
                format!("{:.1}", p.train_fused_us),
                format!("{:.2}x", p.train_speedup),
                format!("{:.1}", p.backward_legacy_us),
                format!("{:.1}", p.backward_fused_us),
                format!("{:.2}x", p.backward_speedup),
                format!("{:.1}", p.infer_legacy_us),
                format!("{:.1}", p.infer_fused_us),
                format!("{:.2}x", p.infer_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "n",
                "batch",
                "apply old",
                "new",
                "x",
                "train old",
                "new",
                "x",
                "bwd old",
                "new",
                "x",
                "infer old",
                "new",
                "x",
            ],
            &rows
        )
    );

    // Butterfly plus pixelfly (paper-default config, valid at dim 256):
    // the serve hot path must be lock-free for both now that pixelfly's
    // inference forward is fused and allocation-free.
    let serve_methods =
        [Method::Butterfly, Method::Pixelfly(bfly_core::PixelflyConfig::paper_default())];
    let serve: Vec<ServeComparison> =
        serve_methods.iter().map(|&m| bench_serve(m, 256, serve_threads, serve_requests)).collect();
    for s in &serve {
        println!(
            "serve {} ({} threads x {} reqs, dim {}, {} host cores): mutex {:.0} rps, \
             lock-free {:.0} rps ({:.2}x)",
            s.method,
            s.threads,
            s.requests_per_thread,
            s.dim,
            s.host_cores,
            s.locked_rps,
            s.lock_free_rps,
            s.speedup,
        );
    }

    let output = BenchOutput { host_cores: host_cores(), kernels: points, serve };
    println!();
    write_bench_json("kernels", &output, smoke);
}
