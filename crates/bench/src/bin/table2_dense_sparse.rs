//! Table 2 — Dense vs sparse square matmul throughput on GPU vs IPU across
//! implementation tiers, in GFLOP/s (sparse entries in dense-equivalent
//! GFLOP/s, which can exceed device peak — the paper's convention).
//!
//! Expected shape: IPU poplin ≫ GPU cublas FP32; TF32 closes most of the
//! gap; IPU naive beats IPU blocked (copies dominate blocked); sparse tiers
//! exceed their device peaks at 99 % sparsity; CSR beats COO on both.

use bfly_bench::anchors::{TABLE2_DENSE, TABLE2_SPARSE};
use bfly_bench::format_table;
use bfly_bench::tiers::{
    gpu_naive_seconds, gpu_pytorch_seconds, gpu_shmem_seconds, ipu_blocked_seconds,
    ipu_naive_seconds,
};
use bfly_data::workload::{MatmulProblem, TABLE2_DENSITIES, TABLE2_DIM};
use bfly_gpu::GpuDevice;
use bfly_ipu::IpuDevice;
use bfly_tensor::LinOp;

fn main() {
    let n = TABLE2_DIM;
    let problem = MatmulProblem::square(n);
    let dense_flops = problem.flops();
    let gpu = GpuDevice::a30();
    let ipu = IpuDevice::gc200();

    let gflops = |seconds: f64| dense_flops / seconds / 1e9;
    let mm = LinOp::MatMul { m: n, k: n, n };

    // --- dense tiers ---
    let mut measured: Vec<(&str, f64)> = Vec::new();
    measured.push(("GPU naive", gflops(gpu_naive_seconds(n, &gpu))));
    measured.push(("GPU shmem", gflops(gpu_shmem_seconds(n, &gpu))));
    let cublas = gpu.run(&[mm], false).expect("fits");
    measured.push(("GPU cublas (FP32)", cublas.gflops()));
    let tf32 = gpu.run(&[mm], true).expect("fits");
    measured.push(("GPU cublas (TF32)", tf32.gflops()));
    measured.push(("IPU naive", gflops(ipu_naive_seconds(n, &ipu))));
    measured.push(("IPU blocked", gflops(ipu_blocked_seconds(n, &ipu))));
    let poplin = ipu.run(&[mm]).expect("fits");
    measured.push(("IPU poplin", poplin.gflops(ipu.spec())));
    measured.push(("GPU PyTorch (FP32)", gflops(gpu_pytorch_seconds(n, false, &gpu))));
    measured.push(("GPU PyTorch (TF32)", gflops(gpu_pytorch_seconds(n, true, &gpu))));
    // PopTorch includes host data-copy time (paper Note 4): inputs, outputs
    // and framework round-trips stream roughly four operand volumes.
    let host_bytes = 4 * problem.bytes();
    let poptorch = ipu.run_with_host_io(&[mm], host_bytes).expect("fits");
    measured.push(("IPU PopTorch", poptorch.gflops(ipu.spec())));

    let rows: Vec<Vec<String>> = TABLE2_DENSE
        .iter()
        .map(|anchor| {
            let model = measured
                .iter()
                .find(|(l, _)| *l == anchor.label)
                .map(|(_, g)| *g)
                .unwrap_or(f64::NAN);
            vec![
                anchor.label.to_string(),
                format!("{:.0}", anchor.gflops),
                format!("{model:.0}"),
                format!("{:.2}x", model / anchor.gflops),
            ]
        })
        .collect();
    println!("Table 2 (dense, N = {n}): GFLOP/s");
    println!("{}", format_table(&["tier", "paper", "model", "model/paper"], &rows));

    // --- sparse tiers (dense-equivalent GFLOP/s) ---
    let mut sparse_rows = Vec::new();
    for (device, anchors) in
        [("GPU cusparse", &TABLE2_SPARSE[0..2]), ("IPU popsparse", &TABLE2_SPARSE[2..4])]
    {
        for (anchor, density) in anchors.iter().zip(TABLE2_DENSITIES.iter().rev()) {
            // TABLE2_DENSITIES = [0.10, 0.01]; anchors are ordered 99%, 90%.
            let density = if anchor.label.contains("99") { 0.01 } else { *density };
            let nnz = ((n * n) as f64 * density).round() as usize;
            let sp = LinOp::SpMM { m: n, k: n, n, nnz };
            let eff = if device.starts_with("GPU") {
                gpu.run(&[sp], false).expect("fits").effective_gflops(dense_flops)
            } else {
                ipu.run(&[sp]).expect("fits").effective_gflops(dense_flops, ipu.spec())
            };
            sparse_rows.push(vec![
                anchor.label.to_string(),
                format!("{:.0}", anchor.gflops),
                format!("{eff:.0}"),
                format!("{:.2}x", eff / anchor.gflops),
            ]);
        }
    }
    println!("\nTable 2 (sparse, dense-equivalent GFLOP/s; * = exceeds device peak)");
    println!("{}", format_table(&["tier", "paper", "model", "model/paper"], &sparse_rows));

    // --- CSR vs COO functional check (paper Note 2) ---
    let mut rng = bfly_tensor::seeded_rng(2024);
    let small = MatmulProblem::square(2048);
    let (csr, dense_b) = small.sparse_operands(0.10, &mut rng);
    let coo = csr.to_coo();
    // Warm up, then time best-of-3 each.
    let _ = csr.spmm(&dense_b);
    let time_best = |f: &dyn Fn() -> bfly_tensor::Matrix| {
        (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let _ = f();
                t0.elapsed()
            })
            .min()
            .expect("three runs")
    };
    let t_csr = time_best(&|| csr.spmm(&dense_b));
    let t_coo = time_best(&|| coo.spmm(&dense_b));
    assert!(csr.spmm(&dense_b).relative_error(&coo.spmm(&dense_b)) < 1e-5);
    println!(
        "\nNote 2 check (host kernels, N=2048, 90% sparse): CSR {t_csr:?} vs COO {t_coo:?} -> {}",
        if t_csr <= t_coo { "CSR faster (matches paper)" } else { "COO faster (differs)" }
    );
}
