//! bench_multitenant — multi-tenant weight residency under an SRAM budget.
//!
//! The paper's butterfly factorization shrinks a model's weight footprint
//! from ~n²·4 bytes to O(n log n); this bench restates that as *tenant
//! density*: how many models stay resident in one replica's SRAM budget,
//! and what happens to the simulated tail when a fleet outgrows it. For
//! each fleet size the same seeded Zipf-skewed trace (a few hot models, a
//! long cold tail, spread over `tenants` tenants round-robin) is offered
//! to a butterfly fleet and a dense-baseline fleet at the *same* budget:
//!
//! - the butterfly fleet keeps many times more models resident, so the
//!   residency hit rate stays high and `sim p99` stays near pure compute;
//! - the dense fleet thrashes once the working set exceeds the budget —
//!   every touch becomes a streaming page-in (bytes / streaming bandwidth
//!   plus the collective launch), and the hit-rate and p99 fall off a
//!   cliff together.
//!
//! Environment knobs: BFLY_MT_DIM (default 256), BFLY_MT_BUDGET_KB
//! (per-replica SRAM budget, default 1024), BFLY_MT_TENANTS (default 4),
//! BFLY_MT_ZIPF (popularity exponent, default 1.0), BFLY_MT_CLIENTS
//! (default 8), BFLY_MT_PER_CLIENT (default 150), BFLY_MT_POLICY (lru |
//! cost-aware, default lru), BFLY_MT_TRACE (pre-sampled trace length,
//! default 512).
//!
//! `--smoke` (or BFLY_BENCH_SMOKE=1) runs a tiny sweep for CI and skips the
//! JSON write so checked-in numbers always come from a full run.

use bfly_bench::json::write_bench_json;
use bfly_bench::{env_f64, env_u64, env_usize, host_cores, smoke_run};
use bfly_core::Method;
use bfly_serve::{
    closed_loop_models_with_pool, CacheConfig, ModelSpec, ResidencyConfig, ResidencyPolicy,
    ServeConfig, Server, ZipfSampler,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct RunStats {
    method: String,
    /// Registered fleet size (models, spread round-robin over tenants).
    models: usize,
    /// Per-model weight footprint, bytes (all models in a run share one
    /// method, so one number describes the fleet).
    weight_bytes_per_model: u64,
    completed: u64,
    /// Models resident on the (single) replica when the run ended — the
    /// tenant-density number the butterfly factorization buys.
    resident_models: usize,
    resident_bytes: u64,
    /// Distinct tenants with at least one resident model at the end.
    resident_tenants: usize,
    residency_hits: u64,
    residency_misses: u64,
    residency_hit_rate: f64,
    evictions: u64,
    cold_loads: u64,
    /// Bytes re-fetched over the streaming link after evictions.
    paged_in_bytes: u64,
    /// Simulated µs spent streaming those bytes back in.
    paging_us: f64,
    /// Simulated per-batch latency quantiles, µs: compute plus whatever
    /// weight transfer each batch's residency miss charged.
    sim_p50_us: f64,
    sim_p99_us: f64,
    wall_throughput_rps: f64,
}

#[derive(Serialize)]
struct BenchOutput {
    host_cores: usize,
    dim: usize,
    classes: usize,
    sram_budget_bytes: u64,
    policy: String,
    tenants: usize,
    zipf_exponent: f64,
    clients: u64,
    per_client: u64,
    trace_len: usize,
    fleet_sizes: Vec<usize>,
    results: Vec<RunStats>,
}

struct Workload {
    dim: usize,
    budget: u64,
    policy: ResidencyPolicy,
    tenants: usize,
    zipf: f64,
    clients: u64,
    per_client: u64,
    trace_len: usize,
}

/// One fleet at one budget: `models` instances of `method`, tenants
/// assigned round-robin, loaded with a seeded Zipf-skewed trace.
fn run_once(w: &Workload, method: Method, models: usize) -> RunStats {
    let specs: Vec<ModelSpec> = (0..models)
        .map(|i| ModelSpec::named(&format!("m{i:03}"), method, &format!("tenant{}", i % w.tenants)))
        .collect();
    let config = ServeConfig {
        dim: w.dim,
        classes: 10,
        seed: 0x7E4A,
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        queue_capacity: (w.clients as usize * 4).max(256),
        workers: 2,
        // Cache off: every request computes and touches the residency
        // manager, so hit rates and paged bytes reflect the weight working
        // set, not response memoization.
        cache: CacheConfig::disabled(),
        // One replica: density and thrash are per-SRAM-budget phenomena;
        // more replicas would just replicate the same curve.
        replicas: 1,
        residency: ResidencyConfig { policy: w.policy, ..ResidencyConfig::with_budget(w.budget) },
        ..Default::default()
    };
    let server = Server::start_fleet(config, &specs).expect("valid fleet");

    // Pre-sample the Zipf-skewed model trace once, seeded, so butterfly and
    // dense fleets of the same size see the *identical* popularity pattern.
    let sampler = ZipfSampler::new(models, w.zipf);
    let mut rng = ChaCha8Rng::seed_from_u64(0x21F5);
    let names: Vec<String> =
        (0..w.trace_len).map(|_| format!("m{:03}", sampler.sample(&mut rng))).collect();
    let trace: Vec<&str> = names.iter().map(String::as_str).collect();

    let report = closed_loop_models_with_pool(&server, &trace, w.clients, w.per_client, 0xFEED, 64);
    let snapshot = server.shutdown();
    let res = &snapshot.residency;
    let resident_tenants = {
        // A tenant is "resident" when at least one of its models ended the
        // run in SRAM: misses < touches means the model was resident at
        // some point, but the end-state count comes from per-model stats.
        let mut seen = vec![false; w.tenants];
        for (i, m) in snapshot.models.iter().enumerate() {
            // End-of-run residency is not exported per model; approximate
            // by "hit at least once", which a never-resident (stream-through
            // or never-touched) model cannot satisfy.
            if m.residency_hits > 0 {
                seen[i % w.tenants] = true;
            }
        }
        seen.iter().filter(|&&s| s).count()
    };
    RunStats {
        method: method.label().to_lowercase(),
        models,
        weight_bytes_per_model: snapshot.models.first().map_or(0, |m| m.weight_bytes),
        completed: report.completed,
        resident_models: res.resident_models,
        resident_bytes: res.resident_bytes,
        resident_tenants,
        residency_hits: res.hits,
        residency_misses: res.misses,
        residency_hit_rate: res.hit_rate,
        evictions: res.evictions,
        cold_loads: res.cold_loads,
        paged_in_bytes: res.paged_in_bytes,
        paging_us: res.paging_us,
        sim_p50_us: report.sim_p50_us,
        sim_p99_us: report.sim_p99_us,
        wall_throughput_rps: report.throughput_rps,
    }
}

fn main() {
    let smoke = smoke_run();
    let workload = Workload {
        dim: env_usize("BFLY_MT_DIM", 256),
        budget: env_u64("BFLY_MT_BUDGET_KB", 1024) * 1024,
        policy: match std::env::var("BFLY_MT_POLICY").as_deref() {
            Ok("cost-aware") => ResidencyPolicy::CostAware,
            _ => ResidencyPolicy::Lru,
        },
        tenants: env_usize("BFLY_MT_TENANTS", 4),
        zipf: env_f64("BFLY_MT_ZIPF", 1.0),
        clients: env_u64("BFLY_MT_CLIENTS", if smoke { 4 } else { 8 }),
        per_client: env_u64("BFLY_MT_PER_CLIENT", if smoke { 20 } else { 150 }),
        trace_len: env_usize("BFLY_MT_TRACE", 512),
    };
    let fleet_sizes: Vec<usize> = if smoke { vec![4, 8] } else { vec![8, 32, 96] };

    println!(
        "bench_multitenant: dim {}, budget {} KiB, policy {}, {} tenants, zipf {}, \
         {} clients x {} requests{}\n",
        workload.dim,
        workload.budget / 1024,
        workload.policy.label(),
        workload.tenants,
        workload.zipf,
        workload.clients,
        workload.per_client,
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>10} {:>6} {:>10} {:>9} {:>8} {:>9} {:>10} {:>12} {:>12} {:>12}",
        "method",
        "fleet",
        "bytes/mdl",
        "resident",
        "tenants",
        "hit rate",
        "evictions",
        "paged KiB",
        "sim p50 us",
        "sim p99 us"
    );

    let mut results = Vec::new();
    for &models in &fleet_sizes {
        for &method in &[Method::Butterfly, Method::Baseline] {
            let stats = run_once(&workload, method, models);
            println!(
                "{:>10} {:>6} {:>10} {:>9} {:>8} {:>9.3} {:>10} {:>12.0} {:>12.2} {:>12.2}",
                stats.method,
                stats.models,
                stats.weight_bytes_per_model,
                stats.resident_models,
                stats.resident_tenants,
                stats.residency_hit_rate,
                stats.evictions,
                stats.paged_in_bytes as f64 / 1024.0,
                stats.sim_p50_us,
                stats.sim_p99_us,
            );
            results.push(stats);
        }
    }

    let output = BenchOutput {
        host_cores: host_cores(),
        dim: workload.dim,
        classes: 10,
        sram_budget_bytes: workload.budget,
        policy: workload.policy.label().to_string(),
        tenants: workload.tenants,
        zipf_exponent: workload.zipf,
        clients: workload.clients,
        per_client: workload.per_client,
        trace_len: workload.trace_len,
        fleet_sizes,
        results,
    };
    println!();
    write_bench_json("multitenant", &output, smoke);
}
