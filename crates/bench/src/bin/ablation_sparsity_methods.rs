//! Ablation — sparsity methods head-to-head at equal parameter budget:
//! butterfly (unstructured-friendly factorization), pixelfly (block
//! structure for dense processors), and unstructured pruning (the pattern
//! the IPU's popsparse path is actually built for).
//!
//! This extends the paper's conclusion — "a sparse processor like the IPU
//! ... requires different methods [than a GPU]" — with the method its own
//! Table 2 suggests: static unstructured pruning at the same density as
//! butterfly's compression. Expected: on the simulated IPU the pruned layer
//! executes on the fast popsparse path; on the GPU it is crippled by
//! cuSPARSE's low effective rate, inverting the preference exactly as the
//! paper's dense-vs-sparse-processor argument predicts.
//!
//! Environment knobs: BFLY_SAMPLES (default 2000), BFLY_EPOCHS (default 6).

use bfly_bench::format_table;
use bfly_bench::simtime::simulated_training_seconds;
use bfly_core::{build_shl, shl_param_count, Method, PixelflyConfig};
use bfly_data::{generate, split, SynthSpec};
use bfly_gpu::GpuDevice;
use bfly_ipu::IpuDevice;
use bfly_nn::{fit, Layer, TrainConfig};
use bfly_tensor::seeded_rng;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let samples = env_usize("BFLY_SAMPLES", 2000);
    let epochs = env_usize("BFLY_EPOCHS", 6);
    let dim = 1024usize;
    let classes = 10;
    let batch = 50;
    let gpu = GpuDevice::a30();
    let ipu = IpuDevice::gc200();

    // Budget-match pruning to the butterfly: 2 n log n + n surviving values
    // over n^2 weights ~= 21/1024 ~= 2.1% density.
    let butterfly_hidden = 2 * dim * (dim.trailing_zeros() as usize) + dim;
    let density_permille = (1000 * butterfly_hidden / (dim * dim)).max(1);

    println!(
        "Ablation: sparsity methods at matched budget (~{:.1}% density), {samples} samples, {epochs} epochs\n",
        density_permille as f64 / 10.0
    );

    let data = generate(&SynthSpec::cifar10_like(samples, 100));
    let methods = [
        Method::Baseline,
        Method::Butterfly,
        Method::Pixelfly(PixelflyConfig::paper_default()),
        Method::Pruned { density_permille },
    ];
    let mut rows = Vec::new();
    for method in methods {
        let mut rng = seeded_rng(700);
        let s = split(data.clone(), 0.2, 0.15, &mut rng);
        let mut model = build_shl(method, dim, classes, &mut rng).expect("valid at 1024");
        let config = TrainConfig { epochs, seed: 701, ..TrainConfig::default() };
        let report = fit(&mut model, &s, &config);
        let forward = model.trace(batch);
        let (_, t_gpu, t_ipu) =
            simulated_training_seconds(&forward, batch, dim, report.steps, epochs, &gpu, &ipu);
        rows.push(vec![
            method.label().to_string(),
            shl_param_count(method, dim, classes).to_string(),
            format!("{:.2}", report.test_accuracy * 100.0),
            format!("{t_gpu:.3}"),
            format!("{t_ipu:.3}"),
            format!("{:.2}x", t_gpu / t_ipu),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["method", "N_Params", "acc %", "T gpu [s]", "T ipu [s]", "IPU speedup"],
            &rows
        )
    );
    println!(
        "reading: at equal parameter budget the butterfly's *structure* is worth\n\
         real accuracy over random unstructured support, and it is the method the\n\
         IPU accelerates best; pixelfly's block alignment only pays on the GPU.\n\
         Pruned-SpMM training at batch 50 is overhead-bound on both devices —\n\
         popsparse's Table 2 wins need large activations to amortise its\n\
         rearrangement, which a batch-50 training step never provides."
    );
}
