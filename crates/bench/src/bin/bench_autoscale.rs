//! bench_autoscale — elastic scale-up under a calibrated flash-crowd trace
//! (`bfly-serve`'s autoscale controller + `bfly-data`'s traffic traces).
//!
//! A calibration run first measures each method's steady-state serving
//! capacity on a single-replica pod (closed loop, cache off). One shared
//! flash-crowd trace is then built against those measurements — quiet at
//! half the *slower* method's capacity, spiking to a multiple of the
//! *faster* method's — and the identical seeded arrival schedule is
//! replayed against every run, so butterfly and the dense baseline face
//! equal offered load. For each method the sweep runs the trace twice:
//! once pinned at the initial pod size (autoscaling disabled) and once
//! elastic (the controller may grow the pod to `max` replicas and drain it
//! back). Scale-up is recovery of a cold replica: the grown standby pays
//! the priced weight load before it can serve, so the run's
//! *time-to-healthy* is read straight off the grown replica's
//! `weight_load_us`. A butterfly replica becomes healthy after an
//! O(n log n)-byte transfer where the dense baseline moves ~n²·4 bytes —
//! the paper's compression argument restated one more time, now as
//! *elasticity under a flash crowd*. Every run is also scored against a
//! simulated-latency SLO set with equal headroom per method — `slo_mult`
//! times that method's own clean p99 — so steady-state batches always fit
//! and misses isolate the scale-up transient: the cold weight load a
//! grown replica's first batch carries breaches dense's SLO but hides
//! inside butterfly's headroom.
//!
//! Environment knobs: BFLY_AUTOSCALE_DIM (default 2048), BFLY_AUTOSCALE_
//! WORKERS (default 2), BFLY_AUTOSCALE_BATCH (default 32),
//! BFLY_AUTOSCALE_POOL (default 64), BFLY_AUTOSCALE_QUEUE (default 512),
//! BFLY_AUTOSCALE_MAX (pod ceiling, default 4), BFLY_AUTOSCALE_CLIENTS /
//! BFLY_AUTOSCALE_PER_CLIENT (calibration load, defaults 32 x 50 — enough
//! concurrent clients to fill max_batch, so the clean p99 prices *full*
//! batches like the ones the flash crowd forms),
//! BFLY_AUTOSCALE_SPIKE (peak rate as a multiple of the fast method's
//! capacity, default 3.0), BFLY_AUTOSCALE_SLO_MULT (per-method SLO as a
//! multiple of its clean sim p99, default 1.2), BFLY_AUTOSCALE_MAX_ARRIVALS
//! (trace size cap, default 60000), BFLY_AUTOSCALE_SEED (trace seed,
//! default 17).
//!
//! `--smoke` (or BFLY_BENCH_SMOKE=1) runs a tiny sweep for CI and skips
//! the JSON write so checked-in numbers always come from a full run.

use bfly_bench::json::write_bench_json;
use bfly_bench::{env_f64, env_u64, env_usize, host_cores, smoke_run};
use bfly_core::Method;
use bfly_data::TrafficTrace;
use bfly_serve::{
    closed_loop_models_with_pool, trace_loop, AutoscaleConfig, AutoscaleReport, CacheConfig,
    ReplicaStats, ScaleDecision, ServeConfig, Server,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Calibration {
    method: String,
    /// Steady-state wall throughput of a single-replica pod, requests/s.
    capacity_rps: f64,
    /// Clean (fault-free, fully warm after the first batch) simulated
    /// per-batch latency percentiles, µs.
    sim_p50_us: f64,
    sim_p99_us: f64,
}

#[derive(Serialize)]
struct RunStats {
    method: String,
    /// `fixed` (autoscaling disabled, pinned at the initial pod size) or
    /// `elastic` (the controller may grow to `max_replicas`).
    mode: String,
    offered: u64,
    completed: u64,
    shed: u64,
    /// Requests whose simulated batch latency breached the method's SLO.
    sim_slo_misses: u64,
    /// The simulated-latency SLO the run was scored against, µs
    /// (`slo_mult` x this method's clean sim p99).
    slo_sim_us: f64,
    /// Standbys the controller enrolled / drained over the run.
    scale_ups: u64,
    drains: u64,
    /// Simulated µs a newly grown replica spent loading weights before it
    /// could serve — the time-to-healthy. `None` when nothing grew.
    time_to_healthy_us: Option<f64>,
    /// Simulated pod makespan: the maximum replica occupancy clock, µs.
    pod_makespan_us: f64,
    /// Completed requests per simulated device second.
    sim_throughput_rps: f64,
    wall_throughput_rps: f64,
    /// Cold weight loads paid across the pod, and their simulated cost.
    cold_loads: u64,
    weight_load_us: f64,
    autoscale: AutoscaleReport,
    replicas_detail: Vec<ReplicaStats>,
}

#[derive(Serialize)]
struct Headline {
    /// Grown-replica time-to-healthy, µs (elastic runs).
    butterfly_time_to_healthy_us: Option<f64>,
    baseline_time_to_healthy_us: Option<f64>,
    /// butterfly / baseline; the acceptance bar is <= 0.25.
    time_to_healthy_ratio: Option<f64>,
    /// SLO misses at equal offered load (elastic runs).
    butterfly_slo_misses: u64,
    baseline_slo_misses: u64,
}

#[derive(Serialize)]
struct BenchOutput {
    config: ConfigBlock,
    host_cores: usize,
    calibration: Vec<Calibration>,
    /// The shared trace both methods replay: rate segments after any
    /// size-cap rescale, plus the arrival count actually offered.
    trace: TraceBlock,
    results: Vec<RunStats>,
    headline: Headline,
}

#[derive(Serialize)]
struct ConfigBlock {
    dim: usize,
    classes: usize,
    workers: usize,
    max_batch: usize,
    input_pool: usize,
    queue_capacity: usize,
    initial_replicas: usize,
    max_replicas: usize,
    spike_multiple: f64,
    slo_mult: f64,
    trace_seed: u64,
    autoscale_interval_ms: u64,
    cooldown_windows: u32,
}

#[derive(Serialize)]
struct TraceBlock {
    duration_s: f64,
    base_rps: f64,
    peak_rps: f64,
    arrivals: usize,
}

struct Workload {
    dim: usize,
    workers: usize,
    max_batch: usize,
    pool: usize,
    queue: usize,
    initial: usize,
    max: usize,
    clients: u64,
    per_client: u64,
    interval: Duration,
    cooldown: u32,
}

fn serve_config(w: &Workload, autoscale: AutoscaleConfig) -> ServeConfig {
    ServeConfig {
        dim: w.dim,
        classes: 10,
        seed: 0xB0D5,
        max_batch: w.max_batch,
        max_wait: Duration::from_micros(200),
        queue_capacity: w.queue,
        workers: w.workers,
        tensor_cores: false,
        // Cache off: every request must compute, so backlog and simulated
        // latency reflect real work and the scale signals are honest.
        cache: CacheConfig::disabled(),
        replicas: w.initial,
        autoscale,
        ..Default::default()
    }
}

fn elastic_config(w: &Workload) -> AutoscaleConfig {
    AutoscaleConfig {
        interval: w.interval,
        cooldown_windows: w.cooldown,
        ..AutoscaleConfig::bounded(w.initial, w.max)
    }
}

/// Measures one method's steady-state capacity on a single-replica pod.
fn calibrate(w: &Workload, method: Method) -> Calibration {
    let name = method.label().to_lowercase();
    let server =
        Server::start(serve_config(w, AutoscaleConfig::default()), &[method]).expect("dim fits");
    let report = closed_loop_models_with_pool(
        &server,
        &[name.as_str()],
        w.clients,
        w.per_client,
        0xBEE5,
        w.pool,
    );
    server.shutdown();
    Calibration {
        method: name,
        capacity_rps: report.throughput_rps,
        sim_p50_us: report.sim_p50_us,
        sim_p99_us: report.sim_p99_us,
    }
}

/// Time-to-healthy of the first replica the controller grew: its priced
/// weight load, per cold load so a drain/regrow cycle does not double it.
fn time_to_healthy_us(report: &AutoscaleReport, replicas: &[ReplicaStats]) -> Option<f64> {
    report.events.iter().find(|e| e.decision == ScaleDecision::Grow).map(|e| {
        let r = &replicas[e.replica];
        if r.cold_loads > 0 {
            r.weight_load_us / r.cold_loads as f64
        } else {
            0.0 // warm pool pre-paid the load
        }
    })
}

fn run_once(
    w: &Workload,
    method: Method,
    mode: &str,
    autoscale: AutoscaleConfig,
    arrivals: &[f64],
    slo_sim_us: f64,
) -> RunStats {
    let name = method.label().to_lowercase();
    let server = Server::start(serve_config(w, autoscale), &[method]).expect("dim fits");
    let report = trace_loop(&server, &name, arrivals, 0xBEE5, w.pool, Some(slo_sim_us));
    let autoscale_report = server.autoscale_report();
    let snapshot = server.shutdown();
    let makespan_us = snapshot.pod_makespan_us;
    let sim_throughput =
        if makespan_us > 0.0 { report.completed as f64 / (makespan_us / 1e6) } else { 0.0 };
    RunStats {
        method: name,
        mode: mode.to_string(),
        offered: report.offered,
        completed: report.completed,
        shed: report.shed,
        sim_slo_misses: report.sim_slo_misses,
        slo_sim_us,
        scale_ups: snapshot.replicas.iter().map(|r| r.scale_ups).sum(),
        drains: snapshot.replicas.iter().map(|r| r.drains).sum(),
        time_to_healthy_us: time_to_healthy_us(&autoscale_report, &snapshot.replicas),
        pod_makespan_us: makespan_us,
        sim_throughput_rps: sim_throughput,
        wall_throughput_rps: report.throughput_rps,
        cold_loads: snapshot.replicas.iter().map(|r| r.cold_loads).sum(),
        weight_load_us: snapshot.replicas.iter().map(|r| r.weight_load_us).sum(),
        autoscale: autoscale_report,
        replicas_detail: snapshot.replicas,
    }
}

fn main() {
    let smoke = smoke_run();
    let workload = Workload {
        dim: env_usize("BFLY_AUTOSCALE_DIM", if smoke { 512 } else { 2048 }),
        workers: env_usize("BFLY_AUTOSCALE_WORKERS", if smoke { 1 } else { 2 }),
        max_batch: env_usize("BFLY_AUTOSCALE_BATCH", 32),
        pool: env_usize("BFLY_AUTOSCALE_POOL", 64),
        queue: env_usize("BFLY_AUTOSCALE_QUEUE", 512),
        initial: 1,
        max: env_usize("BFLY_AUTOSCALE_MAX", 4),
        clients: env_u64("BFLY_AUTOSCALE_CLIENTS", if smoke { 8 } else { 32 }),
        per_client: env_u64("BFLY_AUTOSCALE_PER_CLIENT", if smoke { 15 } else { 50 }),
        interval: Duration::from_millis(if smoke { 15 } else { 40 }),
        cooldown: 2,
    };
    let spike = env_f64("BFLY_AUTOSCALE_SPIKE", 3.0);
    let slo_mult = env_f64("BFLY_AUTOSCALE_SLO_MULT", 1.2);
    let max_arrivals = env_usize("BFLY_AUTOSCALE_MAX_ARRIVALS", if smoke { 2_500 } else { 60_000 });
    let trace_seed = env_u64("BFLY_AUTOSCALE_SEED", 17);
    let host_cores = host_cores();

    println!(
        "bench_autoscale: dim {}, {} workers, batch {}, pod 1->{}, spike {spike}x, \
         host cores {host_cores}{}\n",
        workload.dim,
        workload.workers,
        workload.max_batch,
        workload.max,
        if smoke { " [smoke]" } else { "" }
    );

    // Calibration: steady single-replica capacity per method. The slower
    // method anchors the quiet rate (both idle comfortably), the faster
    // one anchors the spike (both are overwhelmed during the flash and
    // must grow). Each method's clean p99 anchors its own SLO.
    let methods = [Method::Butterfly, Method::Baseline];
    let calibration: Vec<Calibration> = methods.iter().map(|&m| calibrate(&workload, m)).collect();
    for c in &calibration {
        println!(
            "calibrated {:>10}: {:>8.0} rps steady, sim p50 {:.1} us, p99 {:.1} us",
            c.method, c.capacity_rps, c.sim_p50_us, c.sim_p99_us
        );
    }
    let slow_cap = calibration.iter().map(|c| c.capacity_rps).fold(f64::INFINITY, f64::min);
    let fast_cap = calibration.iter().map(|c| c.capacity_rps).fold(0.0, f64::max);

    // One shared flash-crowd trace: quiet at half the slow method's
    // capacity, spiking to `spike` x the fast method's. Capped in size so
    // a fast host cannot explode the arrival count; the cap rescales both
    // phases together, preserving the quiet:spike ratio.
    let base = (slow_cap * 0.5).max(1.0);
    let peak = (fast_cap * spike).max(base * 2.0);
    let (spike_at, hold, duration) = if smoke { (0.25, 0.5, 1.5) } else { (0.75, 1.25, 3.5) };
    let mut trace = TrafficTrace::flash_crowd(base, peak / base, duration, spike_at, hold);
    let expected = trace.expected_requests();
    if expected > max_arrivals as f64 {
        trace = trace.scaled(max_arrivals as f64 / expected);
        println!(
            "trace rescaled x{:.3} to fit {max_arrivals} arrivals",
            max_arrivals as f64 / expected
        );
    }
    let arrivals = trace.arrivals(&mut ChaCha8Rng::seed_from_u64(trace_seed));
    println!(
        "trace: {:.2} s, base {:.0} rps, peak {:.0} rps, {} arrivals, slo {slo_mult}x clean p99\n",
        trace.duration_s(),
        trace.rate_at(0.0),
        trace.peak_rps(),
        arrivals.len(),
    );

    println!(
        "{:>10} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7} {:>7} {:>12} {:>14}",
        "method",
        "mode",
        "offered",
        "completed",
        "shed",
        "misses",
        "grows",
        "drains",
        "healthy us",
        "sim rps"
    );
    let mut results = Vec::new();
    for (&method, calib) in methods.iter().zip(&calibration) {
        let slo_sim_us = calib.sim_p99_us * slo_mult;
        for (mode, autoscale) in
            [("fixed", AutoscaleConfig::default()), ("elastic", elastic_config(&workload))]
        {
            let stats = run_once(&workload, method, mode, autoscale, &arrivals, slo_sim_us);
            println!(
                "{:>10} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7} {:>7} {:>12} {:>14.0}",
                stats.method,
                stats.mode,
                stats.offered,
                stats.completed,
                stats.shed,
                stats.sim_slo_misses,
                stats.scale_ups,
                stats.drains,
                stats.time_to_healthy_us.map_or("-".to_string(), |v| format!("{v:.1}")),
                stats.sim_throughput_rps,
            );
            results.push(stats);
        }
    }

    let elastic = |m: &str| results.iter().find(|r| r.method == m && r.mode == "elastic");
    let bfly = elastic("butterfly").expect("butterfly elastic run");
    let dense = elastic("baseline").expect("baseline elastic run");
    let headline = Headline {
        butterfly_time_to_healthy_us: bfly.time_to_healthy_us,
        baseline_time_to_healthy_us: dense.time_to_healthy_us,
        time_to_healthy_ratio: match (bfly.time_to_healthy_us, dense.time_to_healthy_us) {
            (Some(b), Some(d)) if d > 0.0 => Some(b / d),
            _ => None,
        },
        butterfly_slo_misses: bfly.sim_slo_misses,
        baseline_slo_misses: dense.sim_slo_misses,
    };
    match headline.time_to_healthy_ratio {
        Some(ratio) => println!(
            "\ntime-to-healthy: butterfly {:.1} us vs dense {:.1} us ({:.3}x); \
             slo misses {} vs {}",
            headline.butterfly_time_to_healthy_us.unwrap_or(0.0),
            headline.baseline_time_to_healthy_us.unwrap_or(0.0),
            ratio,
            headline.butterfly_slo_misses,
            headline.baseline_slo_misses,
        ),
        None => println!("\nno scale-up fired for at least one method (trace too gentle?)"),
    }

    let output = BenchOutput {
        config: ConfigBlock {
            dim: workload.dim,
            classes: 10,
            workers: workload.workers,
            max_batch: workload.max_batch,
            input_pool: workload.pool,
            queue_capacity: workload.queue,
            initial_replicas: workload.initial,
            max_replicas: workload.max,
            spike_multiple: spike,
            slo_mult,
            trace_seed,
            autoscale_interval_ms: workload.interval.as_millis() as u64,
            cooldown_windows: workload.cooldown,
        },
        host_cores,
        calibration,
        trace: TraceBlock {
            duration_s: trace.duration_s(),
            base_rps: trace.rate_at(0.0),
            peak_rps: trace.peak_rps(),
            arrivals: arrivals.len(),
        },
        results,
        headline,
    };
    write_bench_json("autoscale", &output, smoke);
}
