//! Fig 6 — Execution time of `torch.nn.Linear`, butterfly and pixelfly for
//! square problems of dimension N (batch = N), on the GPU with tensor cores
//! off and on, and on the IPU.
//!
//! Methodology notes mirrored from the paper (§4.1):
//! - the IPU path is framework-level (PopTorch) and "inherently includes
//!   data copy time", so the IPU columns include host-link staging of the
//!   input and output activations;
//! - the GPU path times kernels only.
//!
//! Expected shape: GPU break-even at N = 2^11 with worst-case butterfly
//! degradation ~14x at small N (kernel-launch bound); IPU break-even at
//! N = 2^10 with worst degradation ~1.4x (butterfly) / ~1.03x (pixelfly)
//! and max speedups ~1.6x / ~1.3x — the AMP units accelerate only the dense
//! layer, and host I/O flattens all curves.

use bfly_bench::anchors::fig6;
use bfly_bench::json::maybe_write_json;
use bfly_bench::{fmt_time, format_table};
use bfly_core::{PixelflyConfig, PixelflyLayer};
use bfly_gpu::GpuDevice;
use bfly_ipu::IpuDevice;
use bfly_nn::{Dense, Layer};
use bfly_tensor::{seeded_rng, LinOp};

/// Builds the three traces for dimension `n` with batch = `n`.
fn traces(n: usize) -> (Vec<LinOp>, Vec<LinOp>, Vec<LinOp>) {
    let mut rng = seeded_rng(7);
    let linear = Dense::new(n, n, &mut rng).trace(n);
    // Butterfly: permute + log2(n) twiddle stages + bias.
    let mut butterfly = vec![LinOp::Permute { rows: n, width: n }];
    for _ in 0..n.trailing_zeros() {
        butterfly.push(LinOp::Twiddle { pairs: n / 2, batch: n });
    }
    butterfly.push(LinOp::Elementwise { n: n * n, flops_per_elem: 1 });
    // Pixelfly: config scales down for small n (grid must admit the
    // butterfly size), as the reference implementation requires.
    let config = pixelfly_config(n);
    let pixelfly = PixelflyLayer::new(n, n, config, &mut rng)
        .expect("power-of-two dimensions in the sweep")
        .trace(n);
    (linear, butterfly, pixelfly)
}

/// The paper-default pixelfly config, shrunk when N is too small for it.
fn pixelfly_config(n: usize) -> PixelflyConfig {
    let mut c = PixelflyConfig::paper_default();
    while n / c.block_size < c.butterfly_size {
        if c.block_size > 2 {
            c.block_size /= 2;
        } else {
            c.butterfly_size /= 2;
        }
    }
    c.rank = c.rank.min(n / 8);
    c
}

fn main() {
    let gpu = GpuDevice::a30();
    let ipu = IpuDevice::gc200();

    println!("Fig 6: Linear vs butterfly vs pixelfly execution time (batch = N)\n");
    let mut gpu_off_rows = Vec::new();
    let mut gpu_on_rows = Vec::new();
    let mut ipu_rows = Vec::new();
    // Speedup series for the shape summary: (exp, butterfly, pixelfly).
    let mut gpu_speedups = Vec::new();
    let mut ipu_speedups = Vec::new();

    for e in 7..=13u32 {
        let n = 1usize << e;
        let (linear, butterfly, pixelfly) = traces(n);
        // Host staging of the input activation (IPU/PopTorch only; outputs
        // overlap with the next iteration in the 1000-iteration loop).
        let host_bytes = (4 * n * n) as u64;

        // GPU, tensor cores off / on.
        for (tc, rows) in [(false, &mut gpu_off_rows), (true, &mut gpu_on_rows)] {
            let tl = gpu.run(&linear, tc).expect("fits").seconds();
            let tb = gpu.run(&butterfly, tc).expect("fits").seconds();
            let tp = gpu.run(&pixelfly, tc).expect("fits").seconds();
            rows.push(vec![
                format!("2^{e}"),
                fmt_time(tl),
                fmt_time(tb),
                fmt_time(tp),
                format!("{:.2}", tl / tb),
                format!("{:.2}", tl / tp),
            ]);
            if !tc {
                gpu_speedups.push((e, tl / tb, tl / tp));
            }
        }

        // IPU (PopTorch-style, including host I/O). Out-of-memory is a real
        // outcome here — the dense layer exhausts on-chip SRAM first, the
        // memory-limit effect the paper reports for Linear.
        let run_ipu = |trace: &[LinOp]| -> Option<f64> {
            ipu.run_with_host_io(trace, host_bytes).ok().map(|r| r.seconds(ipu.spec()))
        };
        let tl = run_ipu(&linear);
        let tb = run_ipu(&butterfly);
        let tp = run_ipu(&pixelfly);
        let cell = |t: Option<f64>| t.map(fmt_time).unwrap_or_else(|| "OOM".into());
        let ratio = |a: Option<f64>, b: Option<f64>| match (a, b) {
            (Some(a), Some(b)) => format!("{:.2}", a / b),
            _ => "-".into(),
        };
        ipu_rows.push(vec![
            format!("2^{e}"),
            cell(tl),
            cell(tb),
            cell(tp),
            ratio(tl, tb),
            ratio(tl, tp),
        ]);
        if let (Some(tl), Some(tb), Some(tp)) = (tl, tb, tp) {
            ipu_speedups.push((e, tl / tb, tl / tp));
        }
    }

    let _ = maybe_write_json(
        "fig6_speedups",
        &serde_json::json!({
            "gpu_no_tc": gpu_speedups
                .iter()
                .map(|&(e, b, p)| serde_json::json!({"log2_n": e, "s_butterfly": b, "s_pixelfly": p}))
                .collect::<Vec<_>>(),
            "ipu": ipu_speedups
                .iter()
                .map(|&(e, b, p)| serde_json::json!({"log2_n": e, "s_butterfly": b, "s_pixelfly": p}))
                .collect::<Vec<_>>(),
        }),
    );

    let headers = ["N", "Linear", "Butterfly", "Pixelfly", "S(bfly)", "S(pixel)"];
    println!("GPU, tensor cores OFF:\n{}", format_table(&headers, &gpu_off_rows));
    println!("GPU, tensor cores ON:\n{}", format_table(&headers, &gpu_on_rows));
    println!("IPU (incl. host I/O, PopTorch-style):\n{}", format_table(&headers, &ipu_rows));

    // Shape summary vs the paper's headline numbers.
    let break_even = |s: &[(u32, f64, f64)]| s.iter().find(|(_, b, _)| *b >= 1.0).map(|(e, ..)| *e);
    let worst = |s: &[(u32, f64, f64)], pix: bool| {
        s.iter().map(|&(_, b, p)| 1.0 / if pix { p } else { b }).fold(0.0, f64::max)
    };
    let best = |s: &[(u32, f64, f64)], pix: bool| {
        s.iter().map(|&(_, b, p)| if pix { p } else { b }).fold(0.0, f64::max)
    };
    println!("shape vs paper (S = Linear time / method time; S > 1 means method wins):");
    println!(
        "  GPU butterfly break-even: 2^{:?} (paper 2^{})",
        break_even(&gpu_speedups),
        fig6::GPU_BREAK_EVEN_EXP
    );
    println!(
        "  GPU worst degradation: butterfly {:.2}x (paper {}), pixelfly {:.2}x (paper {})",
        worst(&gpu_speedups, false),
        fig6::GPU_WORST_BUTTERFLY,
        worst(&gpu_speedups, true),
        fig6::GPU_WORST_PIXELFLY
    );
    println!(
        "  IPU butterfly break-even: 2^{:?} (paper 2^{})",
        break_even(&ipu_speedups),
        fig6::IPU_BREAK_EVEN_EXP
    );
    println!(
        "  IPU worst degradation: butterfly {:.2}x (paper {}), pixelfly {:.2}x (paper {})",
        worst(&ipu_speedups, false),
        fig6::IPU_WORST_BUTTERFLY,
        worst(&ipu_speedups, true),
        fig6::IPU_WORST_PIXELFLY
    );
    println!(
        "  IPU max speedup: butterfly {:.2}x (paper {}), pixelfly {:.2}x (paper {})",
        best(&ipu_speedups, false),
        fig6::IPU_MAX_BUTTERFLY_SPEEDUP,
        best(&ipu_speedups, true),
        fig6::IPU_MAX_PIXELFLY_SPEEDUP
    );
}
