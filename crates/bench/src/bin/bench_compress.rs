//! bench_compress — the offline compress → deploy → serve pipeline,
//! measured.
//!
//! Two measurements, one JSON:
//!
//! 1. **Compression frontier.** For each dense-MLP depth, train the model
//!    on the synthetic task, compress it layer-by-layer with the
//!    deterministic hierarchical sweep (`compress_model`), fine-tune the
//!    compressed stack briefly, and record parameter compression against
//!    end-task accuracy delta. A per-layer error-budget row shows the
//!    budget semantics: a tight budget rejects every unstructured hidden
//!    layer and degenerates to the identity rewrite (ratio 1.0, delta 0).
//! 2. **Serve throughput at equal offered load.** The trained dense stack
//!    and its compressed twin are deployed as prebuilt models into
//!    separate, identically configured servers over the simulated pod, and
//!    the same seeded closed-loop workload is offered to each: wall and
//!    simulated-device throughput, tail latency, and resident weight bytes
//!    side by side.
//!
//! Environment knobs: BFLY_COMPRESS_DIM (default 256),
//! BFLY_COMPRESS_SAMPLES (default 2400), BFLY_COMPRESS_TRAIN_EPOCHS
//! (default 10), BFLY_COMPRESS_FT_EPOCHS (default 30), BFLY_COMPRESS_FT_LR
//! (default 0.01), BFLY_COMPRESS_CLIENTS (default 16),
//! BFLY_COMPRESS_PER_CLIENT (default 250).
//!
//! `--smoke` (or BFLY_BENCH_SMOKE=1) runs a tiny sweep for CI and skips the
//! JSON write so checked-in numbers always come from a full run.

use bfly_bench::json::write_bench_json;
use bfly_bench::{env_f64, env_u64, env_usize, format_table, host_cores, smoke_run};
use bfly_core::{compress_model, Method, ModelCompressConfig};
use bfly_data::{generate, split, Split, SynthSpec};
use bfly_nn::{build_dense_mlp, evaluate, fit, Sequential, TrainConfig};
use bfly_serve::{closed_loop_models_with_pool, CacheConfig, PrebuiltModel, ServeConfig, Server};
use bfly_tensor::seeded_rng;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct FrontierPoint {
    hidden_layers: usize,
    /// Per-layer relative-error budget the sweep ran under.
    error_budget: f32,
    dense_params: usize,
    compressed_params: usize,
    compression_ratio: f64,
    compressed_layer_count: usize,
    /// Worst per-layer fit error among the replaced layers.
    worst_layer_error: f32,
    dense_accuracy: f64,
    /// Accuracy straight after projection, before any fine-tuning.
    projected_accuracy: f64,
    /// Accuracy after fine-tuning the compressed stack.
    compressed_accuracy: f64,
    /// compressed − dense, percentage points (negative = loss).
    accuracy_delta_pts: f64,
    /// ≥ 4x parameter compression at ≤ 2 points accuracy loss.
    meets_bar: bool,
}

#[derive(Serialize)]
struct ServeStats {
    model: String,
    weight_bytes: u64,
    completed: u64,
    wall_throughput_rps: f64,
    sim_throughput_rps: f64,
    pod_makespan_us: f64,
    latency_p50_us: u64,
    latency_p99_us: u64,
    mean_batch: f64,
}

#[derive(Serialize)]
struct BenchOutput {
    dim: usize,
    classes: usize,
    samples: usize,
    train_epochs: usize,
    finetune_epochs: usize,
    finetune_lr: f64,
    algo: String,
    serve_clients: u64,
    serve_per_client: u64,
    serve_replicas: usize,
    host_cores: usize,
    frontier: Vec<FrontierPoint>,
    serve: Vec<ServeStats>,
}

struct Task {
    dim: usize,
    classes: usize,
    split: Split,
    train_epochs: usize,
    ft_epochs: usize,
    ft_lr: f64,
}

/// Trains the dense stack, compresses under `budget`, fine-tunes, and
/// returns the frontier point plus both stacks (dense, compressed).
fn frontier_point(
    task: &Task,
    hidden_layers: usize,
    budget: f32,
) -> (FrontierPoint, Sequential, Sequential) {
    let hidden = vec![task.dim; hidden_layers];
    let mut rng = seeded_rng(60 + hidden_layers as u64);
    let mut dense = build_dense_mlp(task.dim, &hidden, task.classes, &mut rng);
    let report = fit(
        &mut dense,
        &task.split,
        &TrainConfig { epochs: task.train_epochs, seed: 61, ..TrainConfig::default() },
    );
    let dense_accuracy = report.test_accuracy;

    let config = ModelCompressConfig { max_operator_error: budget, ..Default::default() };
    let result = compress_model(&dense, &config, &mut rng).expect("dense MLPs are supported");
    let ratio = result.compression_ratio();
    let worst = result.worst_layer_error();
    let replaced = result.compressed_layer_count();
    let (dense_params, compressed_params) = (result.dense_params, result.compressed_params);
    let mut compressed = result.model;

    let projected_accuracy = evaluate(&mut compressed, &task.split.test);
    let compressed_accuracy = if replaced > 0 {
        fit(
            &mut compressed,
            &task.split,
            &TrainConfig {
                epochs: task.ft_epochs,
                lr: task.ft_lr as f32,
                seed: 62,
                ..TrainConfig::default()
            },
        )
        .test_accuracy
    } else {
        // Nothing was rewritten: the stack is the dense original.
        projected_accuracy
    };
    let delta = (compressed_accuracy - dense_accuracy) * 100.0;
    let point = FrontierPoint {
        hidden_layers,
        error_budget: budget,
        dense_params,
        compressed_params,
        compression_ratio: ratio,
        compressed_layer_count: replaced,
        worst_layer_error: worst,
        dense_accuracy,
        projected_accuracy,
        compressed_accuracy,
        accuracy_delta_pts: delta,
        meets_bar: ratio >= 4.0 && delta >= -2.0,
    };
    (point, dense, compressed)
}

/// Offers the same seeded closed-loop workload to one prebuilt model on a
/// fresh single-model server.
fn serve_once(
    task: &Task,
    name: &str,
    method: Method,
    stack: Sequential,
    clients: u64,
    per_client: u64,
    replicas: usize,
) -> ServeStats {
    let config = ServeConfig {
        dim: task.dim,
        classes: task.classes,
        seed: 63,
        max_batch: 32,
        max_wait: Duration::from_micros(200),
        queue_capacity: (clients as usize * 4).max(256),
        workers: 2,
        // Cache off: every request computes, so throughput is honest.
        cache: CacheConfig::disabled(),
        replicas,
        ..Default::default()
    };
    let server =
        Server::start_fleet_prebuilt(config, &[], vec![PrebuiltModel::new(name, method, stack)])
            .expect("prebuilt fleet");
    let load = closed_loop_models_with_pool(&server, &[name], clients, per_client, 64, 64);
    let snapshot = server.shutdown();
    let makespan = snapshot.pod_makespan_us;
    ServeStats {
        model: name.to_string(),
        weight_bytes: snapshot.models.iter().map(|m| m.weight_bytes).sum(),
        completed: load.completed,
        wall_throughput_rps: load.throughput_rps,
        sim_throughput_rps: if makespan > 0.0 {
            load.completed as f64 / (makespan / 1e6)
        } else {
            0.0
        },
        pod_makespan_us: makespan,
        latency_p50_us: load.latency_p50_us,
        latency_p99_us: load.latency_p99_us,
        mean_batch: load.mean_batch,
    }
}

fn main() {
    let smoke = smoke_run();
    let dim = env_usize("BFLY_COMPRESS_DIM", if smoke { 64 } else { 256 });
    let samples = env_usize("BFLY_COMPRESS_SAMPLES", if smoke { 600 } else { 2400 });
    let train_epochs = env_usize("BFLY_COMPRESS_TRAIN_EPOCHS", if smoke { 3 } else { 10 });
    let ft_epochs = env_usize("BFLY_COMPRESS_FT_EPOCHS", if smoke { 5 } else { 30 });
    let ft_lr = env_f64("BFLY_COMPRESS_FT_LR", 0.01);
    let clients = env_u64("BFLY_COMPRESS_CLIENTS", if smoke { 4 } else { 16 });
    let per_client = env_u64("BFLY_COMPRESS_PER_CLIENT", if smoke { 25 } else { 250 });
    let replicas = 4usize;

    let spec = SynthSpec {
        dim,
        num_classes: 10,
        samples,
        latent_dim: 24.min(dim / 2),
        latent_noise: 1.2,
        pixel_noise: 0.2,
        seed: 58,
    };
    let data = generate(&spec);
    let mut rng = seeded_rng(59);
    let task = Task {
        dim,
        classes: 10,
        split: split(data, 0.2, 0.15, &mut rng),
        train_epochs,
        ft_epochs,
        ft_lr,
    };

    // Frontier: depth sweep under the permissive budget, plus one
    // tight-budget row demonstrating the budget semantics. The depth-2
    // stacks from the last permissive row are kept for the serve phase.
    let depth_points: Vec<(usize, f32)> =
        if smoke { vec![(1, 1.0), (1, 0.5)] } else { vec![(1, 1.0), (2, 1.0), (2, 0.5)] };
    let serve_depth = if smoke { 1 } else { 2 };
    let mut frontier = Vec::new();
    let mut serve_stacks: Option<(Sequential, Sequential)> = None;
    for (depth, budget) in depth_points {
        println!("frontier: {depth} hidden layer(s), error budget {budget} ...");
        let (point, dense, compressed) = frontier_point(&task, depth, budget);
        println!(
            "  {:.1}x compression, dense {:.2}% -> compressed {:.2}% ({:+.2} pts){}",
            point.compression_ratio,
            point.dense_accuracy * 100.0,
            point.compressed_accuracy * 100.0,
            point.accuracy_delta_pts,
            if point.meets_bar { "  [meets >=4x @ <=2pt bar]" } else { "" }
        );
        if depth == serve_depth && budget == 1.0 {
            serve_stacks = Some((dense, compressed));
        }
        frontier.push(point);
    }

    let rows: Vec<Vec<String>> = frontier
        .iter()
        .map(|p| {
            vec![
                p.hidden_layers.to_string(),
                format!("{:.2}", p.error_budget),
                p.dense_params.to_string(),
                p.compressed_params.to_string(),
                format!("{:.1}x", p.compression_ratio),
                format!("{:.2}", p.dense_accuracy * 100.0),
                format!("{:.2}", p.projected_accuracy * 100.0),
                format!("{:.2}", p.compressed_accuracy * 100.0),
                format!("{:+.2}", p.accuracy_delta_pts),
                if p.meets_bar { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        format_table(
            &[
                "hidden", "budget", "dense-p", "comp-p", "ratio", "dense%", "proj%", "tuned%",
                "delta", "bar"
            ],
            &rows
        )
    );

    // Serve: identical offered load at the dense stack and its compressed
    // twin, separate but identically configured servers.
    let (dense, compressed) = serve_stacks.expect("serve depth is always in the sweep");
    println!("serving dense vs compressed at equal offered load ({clients}x{per_client})...");
    let serve = vec![
        serve_once(&task, "mlp-dense", Method::Baseline, dense, clients, per_client, replicas),
        serve_once(
            &task,
            "mlp-butterfly",
            Method::Butterfly,
            compressed,
            clients,
            per_client,
            replicas,
        ),
    ];
    let srows: Vec<Vec<String>> = serve
        .iter()
        .map(|s| {
            vec![
                s.model.clone(),
                format!("{}", s.weight_bytes / 1024),
                s.completed.to_string(),
                format!("{:.0}", s.wall_throughput_rps),
                format!("{:.0}", s.sim_throughput_rps),
                s.latency_p50_us.to_string(),
                s.latency_p99_us.to_string(),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        format_table(
            &["model", "KiB", "completed", "wall-rps", "sim-rps", "p50us", "p99us"],
            &srows
        )
    );
    if let [d, b] = serve.as_slice() {
        if d.wall_throughput_rps > 0.0 {
            println!(
                "compressed serves {:.2}x the dense throughput at {:.1}x fewer resident bytes",
                b.wall_throughput_rps / d.wall_throughput_rps,
                d.weight_bytes as f64 / b.weight_bytes.max(1) as f64
            );
        }
    }

    let output = BenchOutput {
        dim,
        classes: 10,
        samples,
        train_epochs,
        finetune_epochs: ft_epochs,
        finetune_lr: ft_lr,
        algo: "hierarchical".to_string(),
        serve_clients: clients,
        serve_per_client: per_client,
        serve_replicas: replicas,
        host_cores: host_cores(),
        frontier,
        serve,
    };
    write_bench_json("compress", &output, smoke);
}
