//! Ablation — butterfly parametrizations: free 2x2 twiddles (Dao et al.)
//! versus rotation-constrained (orthogonal) twiddles, against the dense
//! baseline.
//!
//! Motivation: the paper's Table 4 reports Butterfly N_Params = 16,390,
//! which no standard free-twiddle count reproduces — but the rotation
//! parametrization gives 16,394 (within 4). This ablation compares the two
//! variants head-to-head: parameters, trained accuracy, and simulated
//! device times, so the reader can judge whether the variants are
//! interchangeable for the paper's conclusions.
//!
//! Environment knobs: BFLY_SAMPLES (default 2000), BFLY_EPOCHS (default 6).

use bfly_bench::format_table;
use bfly_bench::simtime::simulated_training_seconds;
use bfly_core::{build_shl, shl_param_count, Method};
use bfly_data::{generate, split, SynthSpec};
use bfly_gpu::GpuDevice;
use bfly_ipu::IpuDevice;
use bfly_nn::{fit, Layer, TrainConfig};
use bfly_tensor::seeded_rng;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let samples = env_usize("BFLY_SAMPLES", 2000);
    let epochs = env_usize("BFLY_EPOCHS", 6);
    let dim = 1024;
    let classes = 10;
    let batch = 50;
    let gpu = GpuDevice::a30();
    let ipu = IpuDevice::gc200();

    println!("Ablation: butterfly parametrizations ({samples} samples, {epochs} epochs)\n");
    let data = generate(&SynthSpec::cifar10_like(samples, 100));

    let mut rows = Vec::new();
    for method in [Method::Baseline, Method::Butterfly, Method::OrthoButterfly] {
        let mut rng = seeded_rng(500);
        let s = split(data.clone(), 0.2, 0.15, &mut rng);
        let mut model = build_shl(method, dim, classes, &mut rng).expect("valid at 1024");
        let config = TrainConfig { epochs, seed: 501, ..TrainConfig::default() };
        let report = fit(&mut model, &s, &config);
        let forward = model.trace(batch);
        let (_, t_gpu, t_ipu) =
            simulated_training_seconds(&forward, batch, dim, report.steps, epochs, &gpu, &ipu);
        rows.push(vec![
            method.label().to_string(),
            shl_param_count(method, dim, classes).to_string(),
            format!("{:.2}", report.test_accuracy * 100.0),
            format!("{t_gpu:.3}"),
            format!("{t_ipu:.3}"),
        ]);
    }
    println!("{}", format_table(&["method", "N_Params", "acc %", "T gpu [s]", "T ipu [s]"], &rows));
    println!("paper Table 4 butterfly: N_Params = 16,390, acc 41.13 (IPU)");
    println!(
        "ortho SHL total = {} — the closest decode of the paper's butterfly budget\n\
         (free-twiddle BP would be {}); both run the same device trace, so their\n\
         simulated times coincide and only expressiveness differs.",
        shl_param_count(Method::OrthoButterfly, dim, classes),
        shl_param_count(Method::Butterfly, dim, classes),
    );
}
