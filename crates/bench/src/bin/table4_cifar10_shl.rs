//! Table 4 — Single-hidden-layer (SHL) benchmark on the CIFAR-10-like task
//! with the six structured-matrix methods, on GPU (tensor cores on/off) and
//! IPU: test accuracy, training time, and parameter count.
//!
//! Substitutions versus the paper (see DESIGN.md):
//! - the dataset is the synthetic CIFAR-10-like generator (1024-dim
//!   grayscale, 10 classes), so absolute accuracies differ; the comparison
//!   of interest is the *ordering* across methods and the parameter budgets
//!   (five of the paper's six N_Params are matched exactly);
//! - training runs for real on the host; per-device execution time is the
//!   simulated device time of the per-step op trace (forward + backward
//!   approximated as 3x the forward trace), times the number of steps. The
//!   three accuracy columns are independent seeds, mirroring the paper's
//!   note that device-to-device accuracy differences (<1.5 %) come from
//!   float non-associativity and weight-init randomization.
//!
//! Environment knobs: BFLY_SAMPLES (default 3000), BFLY_EPOCHS (default 6).

use bfly_bench::anchors::TABLE4;
use bfly_bench::format_table;
use bfly_bench::simtime::simulated_training_seconds;
use bfly_core::{build_shl, shl_param_count, Method};
use bfly_data::{generate, split, SynthSpec};
use bfly_gpu::GpuDevice;
use bfly_ipu::IpuDevice;
use bfly_nn::{fit, Layer, TrainConfig};
use bfly_tensor::seeded_rng;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let samples = env_usize("BFLY_SAMPLES", 3000);
    let epochs = env_usize("BFLY_EPOCHS", 6);
    let dim = 1024usize;
    let classes = 10usize;
    let batch = 50usize;
    let gpu = GpuDevice::a30();
    let ipu = IpuDevice::gc200();

    println!(
        "Table 4: SHL on CIFAR-10-like (synthetic), {samples} samples, {epochs} epochs, batch {batch}\n"
    );

    let mut rows = Vec::new();
    for (anchor, method) in TABLE4.iter().zip(Method::table4_all()) {
        // Three independent init/shuffle seeds stand in for the three device
        // columns (the paper: <1.5 % spread from float non-associativity and
        // weight-init randomization). The dataset itself is fixed.
        let data = generate(&SynthSpec::cifar10_like(samples, 100));
        let mut accs = Vec::new();
        let mut steps_total = 0usize;
        for seed in 0..3u64 {
            let mut rng = seeded_rng(200 + seed);
            let s = split(data.clone(), 0.2, 0.15, &mut rng);
            let mut model = match build_shl(method, dim, classes, &mut rng) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{method}: {e}");
                    break;
                }
            };
            let config = TrainConfig { epochs, seed: 300 + seed, ..TrainConfig::default() };
            let report = fit(&mut model, &s, &config);
            accs.push(report.test_accuracy * 100.0);
            steps_total = report.steps;
        }
        if accs.len() < 3 {
            continue;
        }
        // Device time from the per-step forward trace.
        let mut rng = seeded_rng(400);
        let model = build_shl(method, dim, classes, &mut rng).expect("valid at 1024");
        let forward = model.trace(batch);
        let (t_tc, t_gpu, t_ipu) =
            simulated_training_seconds(&forward, batch, dim, steps_total, epochs, &gpu, &ipu);

        let n_params = shl_param_count(method, dim, classes);
        rows.push(vec![
            method.label().to_string(),
            format!("{n_params} ({})", anchor.n_params),
            format!("{:.2}", accs[0]),
            format!("{:.2}", accs[1]),
            format!("{:.2}", accs[2]),
            format!("{t_tc:.3}"),
            format!("{t_gpu:.3}"),
            format!("{t_ipu:.3}"),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "Method",
                "N_Params (paper)",
                "Acc% s0",
                "Acc% s1",
                "Acc% s2",
                "T gpu+tc [s]",
                "T gpu [s]",
                "T ipu [s]",
            ],
            &rows
        )
    );

    // Shape summary.
    println!("paper anchors (accuracy %, time s):");
    for a in &TABLE4 {
        println!(
            "  {:<9} N={:<8} acc {:5.2}/{:5.2}/{:5.2}  time {:6.2}/{:6.2}/{:6.2}",
            a.method,
            a.n_params,
            a.acc_gpu_tc,
            a.acc_gpu,
            a.acc_ipu,
            a.time_gpu_tc,
            a.time_gpu,
            a.time_ipu
        );
    }
    let compression = bfly_core::compression_percent(Method::Butterfly, dim, classes);
    println!("\nbutterfly compression vs baseline: {compression:.1}% (paper headline 98.5%)");
    println!(
        "expected shape: Baseline >= Butterfly ~ Pixelfly > Fastfood > Circulant > Low-rank;\n\
         butterfly trains faster on IPU than GPU (paper 1.62x); pixelfly does not."
    );
}
