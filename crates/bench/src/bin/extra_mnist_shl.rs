//! Extra — the MNIST side of §4.2: the paper omits a full MNIST table but
//! reports three facts we reproduce here on the MNIST-like task (784-dim,
//! *not* a power of two):
//!
//! 1. "the pixelfly approach did not work on the MNIST dataset due to the
//!    requirements of the matrix sizes being a power of two";
//! 2. "for MNIST slight accuracy improvements for butterfly are visible,
//!    most likely to improved regularization as a side effect";
//! 3. "insights are mostly inline with those for CIFAR-10".
//!
//! Environment knobs: BFLY_SAMPLES (default 2500), BFLY_EPOCHS (default 6).

use bfly_bench::format_table;
use bfly_core::{build_shl, shl_param_count, Method, PixelflyConfig};
use bfly_data::{generate, split, SynthSpec};
use bfly_nn::{fit, TrainConfig};
use bfly_tensor::seeded_rng;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let samples = env_usize("BFLY_SAMPLES", 2500);
    let epochs = env_usize("BFLY_EPOCHS", 6);
    let dim = 784usize; // 28 x 28 — intentionally not a power of two.
    let classes = 10usize;

    println!("MNIST-like SHL benchmark ({samples} samples, {epochs} epochs, dim {dim})\n");

    // Claim 1: pixelfly cannot be constructed at 784.
    let mut rng = seeded_rng(600);
    match build_shl(Method::Pixelfly(PixelflyConfig::paper_default()), dim, classes, &mut rng) {
        Err(e) => println!("pixelfly on MNIST: REJECTED as in the paper — {e}\n"),
        Ok(_) => println!("pixelfly on MNIST: unexpectedly constructed (differs from paper)\n"),
    }

    // Claims 2 & 3: train the remaining methods.
    let data = generate(&SynthSpec::mnist_like(samples, 601));
    let mut rows = Vec::new();
    let mut baseline_acc = 0.0f64;
    let mut butterfly_acc = 0.0f64;
    for method in [
        Method::Baseline,
        Method::Butterfly,
        Method::OrthoButterfly,
        Method::Fastfood,
        Method::Circulant,
        Method::LowRank { rank: 1 },
    ] {
        let mut rng = seeded_rng(602);
        let s = split(data.clone(), 0.2, 0.15, &mut rng);
        let mut model =
            build_shl(method, dim, classes, &mut rng).expect("non-pixelfly methods pad");
        let config = TrainConfig { epochs, seed: 603, ..TrainConfig::default() };
        let report = fit(&mut model, &s, &config);
        let acc = report.test_accuracy * 100.0;
        if method == Method::Baseline {
            baseline_acc = acc;
        }
        if method == Method::Butterfly {
            butterfly_acc = acc;
        }
        rows.push(vec![
            method.label().to_string(),
            shl_param_count(method, dim, classes).to_string(),
            format!("{acc:.2}"),
        ]);
    }
    println!("{}", format_table(&["method", "N_Params", "acc %"], &rows));
    println!(
        "butterfly vs baseline: {butterfly_acc:.2}% vs {baseline_acc:.2}% -> {}",
        if butterfly_acc >= baseline_acc - 0.5 {
            "within noise of / above the baseline (paper: slight improvements from regularization)"
        } else {
            "below the baseline on this run"
        }
    );
}
