//! Pre-fusion reference kernels, kept solely for benchmarking.
//!
//! These types replicate the butterfly hot path exactly as it existed
//! before the fused stage-major kernels landed, including every overhead the
//! fusion PR removed:
//!
//! - quad-array twiddle storage (`Vec<[f32; 4]>`) with per-pair indexed
//!   access, instead of today's flat `[f32]` layout;
//! - an unconditional `sync_params_into_butterfly` on **every** forward,
//!   copying all `2 n log n` parameter values into the factor storage;
//! - a full-matrix pad/copy even when the input is already transform-width,
//!   a separate permutation matrix, one whole-matrix parallel pass per
//!   stage, and a full activation-matrix `clone()` per stage in training
//!   mode;
//! - a fresh `vec![[0.0; 4]; pairs]` gradient buffer per stage in backward,
//!   flattened through a `collect()` before accumulation, and a
//!   `perm.inverse()` recomputed on every backward call;
//! - a per-row heap allocation inside `apply_batch`.
//!
//! `bench_kernels` times these against the fused kernels on identical
//! inputs; they are *not* part of the library's API surface and nothing
//! outside the bench harness should call them. The arithmetic per twiddle
//! pair is identical to the fused kernels, so outputs are bit-identical —
//! the comparison isolates layout, traversal and allocation behaviour.

use bfly_core::Butterfly;
use bfly_tensor::{Matrix, Permutation};
use rayon::prelude::*;

/// Pre-PR butterfly factor: quad-array twiddle storage.
pub struct LegacyFactor {
    /// Width of each block-diagonal block.
    pub block_size: usize,
    /// Twiddles `[a, b, c, d]`, one array per mixed pair.
    pub twiddles: Vec<[f32; 4]>,
}

impl LegacyFactor {
    /// The old `ButterflyFactor::apply_in_place`: indexed pair loop over
    /// quad arrays.
    #[inline]
    pub fn apply_in_place(&self, x: &mut [f32]) {
        let n = x.len();
        let k = self.block_size;
        let half = k / 2;
        let mut t = 0usize;
        for start in (0..n).step_by(k) {
            for j in 0..half {
                let p = start + j;
                let q = p + half;
                let [a, b, c, d] = self.twiddles[t];
                let xp = x[p];
                let xq = x[q];
                x[p] = a * xp + b * xq;
                x[q] = c * xp + d * xq;
                t += 1;
            }
        }
    }

    /// The old `ButterflyFactor::backward_in_place`, accumulating into
    /// quad-array gradients.
    #[inline]
    pub fn backward_in_place(&self, x: &[f32], grad: &mut [f32], grad_twiddles: &mut [[f32; 4]]) {
        let n = x.len();
        let k = self.block_size;
        let half = k / 2;
        let mut t = 0usize;
        for start in (0..n).step_by(k) {
            for j in 0..half {
                let p = start + j;
                let q = p + half;
                let [a, b, c, d] = self.twiddles[t];
                let (xp, xq) = (x[p], x[q]);
                let (gyp, gyq) = (grad[p], grad[q]);
                let gt = &mut grad_twiddles[t];
                gt[0] += gyp * xp;
                gt[1] += gyp * xq;
                gt[2] += gyq * xp;
                gt[3] += gyq * xq;
                grad[p] = a * gyp + c * gyq;
                grad[q] = b * gyp + d * gyq;
                t += 1;
            }
        }
    }
}

/// Pre-PR butterfly: quad-array factors plus the flat `Param`-style values
/// they are re-synced from on every forward.
pub struct LegacyButterfly {
    /// The initial permutation `P`.
    pub perm: Permutation,
    /// Factors ordered by application.
    pub factors: Vec<LegacyFactor>,
    /// Flat per-stage parameter values (the `Param::value` of the time).
    pub params: Vec<Vec<f32>>,
}

impl LegacyButterfly {
    /// Builds the legacy representation of `b`, with identical parameter
    /// values so outputs can be compared bit for bit.
    pub fn from_butterfly(b: &Butterfly) -> Self {
        let factors = b
            .factors
            .iter()
            .map(|f| LegacyFactor {
                block_size: f.block_size,
                twiddles: f.twiddles.chunks_exact(4).map(|q| [q[0], q[1], q[2], q[3]]).collect(),
            })
            .collect();
        let params = b.factors.iter().map(|f| f.twiddles.clone()).collect();
        Self { perm: b.perm.clone(), factors, params }
    }

    /// The old `sync_params_into_butterfly`: copies every parameter value
    /// into the factors' quad storage. The pre-PR layer ran this on every
    /// forward, dirty or not.
    pub fn sync_params(&mut self) {
        for (f, p) in self.factors.iter_mut().zip(&self.params) {
            for (t, quad) in f.twiddles.iter_mut().zip(p.chunks_exact(4)) {
                t.copy_from_slice(quad);
            }
        }
    }

    /// The old `Butterfly::apply`: a fresh permuted row, then the factors.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.perm.apply(x);
        for f in &self.factors {
            f.apply_in_place(&mut y);
        }
        y
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        self.perm.len()
    }
}

/// The old `Butterfly::apply_batch`: one heap-allocated scratch row per
/// input row, gathered through the permutation, transformed, copied back.
pub fn legacy_apply_batch(b: &LegacyButterfly, x: &Matrix) -> Matrix {
    let n = b.n();
    assert_eq!(x.cols(), n, "legacy_apply_batch width mismatch");
    let mut out = Matrix::zeros(x.rows(), n);
    out.as_mut_slice().par_chunks_mut(n).zip(x.as_slice().par_chunks(n)).for_each(|(dst, src)| {
        let y = b.apply(src);
        dst.copy_from_slice(&y);
    });
    out
}

/// The old `ButterflyLayer::forward`: unconditional param sync, pad (a full
/// copy even at transform width), permute into a second matrix, then one
/// whole-matrix pass per stage — cloning the entire activation matrix before
/// each stage when `train` is set — and finally crop + bias into a third
/// matrix.
pub fn legacy_forward(
    b: &mut LegacyButterfly,
    input: &Matrix,
    bias: &[f32],
    out_dim: usize,
    train: bool,
) -> (Matrix, Vec<Matrix>) {
    b.sync_params();
    let n = b.n();
    let batch = input.rows();
    let padded = if input.cols() == n { input.clone() } else { input.zero_pad(batch, n) };
    let mut y = b.perm.apply_to_rows(&padded);
    let mut cache = Vec::with_capacity(b.factors.len());
    for f in &b.factors {
        if train {
            cache.push(y.clone());
        }
        y.as_mut_slice().par_chunks_mut(n).for_each(|row| f.apply_in_place(row));
    }
    let mut out = Matrix::zeros(batch, out_dim);
    for r in 0..batch {
        for (o, (v, bv)) in out.row_mut(r).iter_mut().zip(y.row(r).iter().zip(bias)) {
            *o = v + bv;
        }
    }
    (out, cache)
}

/// The old `ButterflyLayer::backward` body (minus the bias/Param plumbing):
/// pads the output gradient, walks the stages in reverse allocating a fresh
/// quad-array gradient buffer per stage (flattened through a `collect`
/// before accumulation), and un-permutes through a freshly inverted
/// permutation and yet another full matrix.
pub fn legacy_backward(
    b: &LegacyButterfly,
    grad_output: &Matrix,
    cache: &[Matrix],
    in_dim: usize,
    grad_twiddles: &mut [Vec<f32>],
) -> Matrix {
    let n = b.n();
    let batch = grad_output.rows();
    let mut g = grad_output.zero_pad(batch, n);
    for (s, f) in b.factors.iter().enumerate().rev() {
        let x_cache = &cache[s];
        let mut gt = vec![[0.0f32; 4]; f.twiddles.len()];
        for (grow, xrow) in g.as_mut_slice().chunks_mut(n).zip(x_cache.as_slice().chunks(n)) {
            f.backward_in_place(xrow, grow, &mut gt);
        }
        let flat: Vec<f32> = gt.iter().flatten().copied().collect();
        for (acc, v) in grad_twiddles[s].iter_mut().zip(&flat) {
            *acc += v;
        }
    }
    let inv = b.perm.inverse();
    let g = inv.apply_to_rows(&g);
    g.submatrix(0, 0, batch, in_dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_core::kernels::{fused_backward, fused_forward, fused_forward_train};
    use bfly_tensor::{seeded_rng, Scratch};

    #[test]
    fn legacy_apply_matches_fused_apply() {
        let mut rng = seeded_rng(301);
        let b = Butterfly::random(32, &mut rng);
        let lb = LegacyButterfly::from_butterfly(&b);
        let x = Matrix::random_uniform(9, 32, 1.0, &mut rng);
        let legacy = legacy_apply_batch(&lb, &x);
        let fused = b.apply_batch(&x);
        assert_eq!(legacy.as_slice(), fused.as_slice());
    }

    #[test]
    fn legacy_forward_backward_match_fused() {
        let mut rng = seeded_rng(302);
        let b = Butterfly::random(16, &mut rng);
        let mut lb = LegacyButterfly::from_butterfly(&b);
        let x = Matrix::random_uniform(7, 16, 1.0, &mut rng);
        let bias = vec![0.25f32; 16];

        let (legacy_y, cache) = legacy_forward(&mut lb, &x, &bias, 16, true);
        let mut scratch = Scratch::new();
        let mut arena = Vec::new();
        let fused_y = fused_forward_train(&x, &b.perm, &b.factors, &bias, &mut arena, &mut scratch);
        assert_eq!(legacy_y.as_slice(), fused_y.as_slice());
        let eval_y = fused_forward(&x, &b.perm, &b.factors, &bias, &mut scratch);
        assert_eq!(legacy_y.as_slice(), eval_y.as_slice());

        let mut legacy_gt: Vec<Vec<f32>> =
            b.factors.iter().map(|f| vec![0.0; f.twiddles.len()]).collect();
        let legacy_gx = legacy_backward(&lb, &legacy_y, &cache, 16, &mut legacy_gt);
        let mut fused_gt: Vec<Vec<f32>> =
            b.factors.iter().map(|f| vec![0.0; f.twiddles.len()]).collect();
        let fused_gx = fused_backward(&legacy_y, &b.perm, &b.factors, &arena, 16, |s, flat| {
            for (acc, v) in fused_gt[s].iter_mut().zip(flat) {
                *acc += v;
            }
        });
        assert_eq!(legacy_gx.as_slice(), fused_gx.as_slice());
        for (lg, fg) in legacy_gt.iter().zip(&fused_gt) {
            for (a, b) in lg.iter().zip(fg) {
                assert!((a - b).abs() < 1e-4, "twiddle grads diverged: {a} vs {b}");
            }
        }
    }
}
