//! Fast Walsh-Hadamard transform.
//!
//! The Fastfood baseline (Table 4) composes diagonal matrices with Hadamard
//! transforms: `V = S H G Pi H B`. The FWHT applies the `n x n` Hadamard
//! matrix in `O(n log n)` additions, needing no stored matrix at all.

use crate::matrix::Matrix;

/// In-place unnormalised fast Walsh-Hadamard transform.
///
/// Applies the Hadamard matrix `H_n` (entries +-1) to `data`. Applying it
/// twice yields `n * identity`, which [`fwht_normalized`] accounts for.
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn fwht_in_place(data: &mut [f32]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FWHT length {n} must be a power of two");
    let mut h = 1;
    while h < n {
        for start in (0..n).step_by(h * 2) {
            for i in start..start + h {
                let x = data[i];
                let y = data[i + h];
                data[i] = x + y;
                data[i + h] = x - y;
            }
        }
        h *= 2;
    }
}

/// In-place orthonormal FWHT (`H / sqrt(n)`), an involution.
pub fn fwht_normalized(data: &mut [f32]) {
    fwht_in_place(data);
    let scale = 1.0 / (data.len() as f32).sqrt();
    for x in data.iter_mut() {
        *x *= scale;
    }
}

/// Applies the unnormalised FWHT to every row of a matrix.
pub fn fwht_rows(m: &mut Matrix) {
    let cols = m.cols();
    assert!(cols.is_power_of_two(), "FWHT row length {cols} must be a power of two");
    for r in 0..m.rows() {
        fwht_in_place(m.row_mut(r));
    }
}

/// The dense `n x n` Hadamard matrix (entries +-1), for cross-checking.
pub fn hadamard_matrix(n: usize) -> Matrix {
    assert!(n.is_power_of_two(), "Hadamard order must be a power of two");
    Matrix::from_fn(n, n, |r, c| {
        // H[r][c] = (-1)^{popcount(r & c)}
        if (r & c).count_ones() % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matvec;

    #[test]
    fn fwht_matches_dense_hadamard() {
        let n = 16;
        let h = hadamard_matrix(n);
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin()).collect();
        let expected = matvec(&h, &x);
        let mut got = x.clone();
        fwht_in_place(&mut got);
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-4);
        }
    }

    #[test]
    fn normalized_fwht_is_involution() {
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 1.7).cos()).collect();
        let mut y = x.clone();
        fwht_normalized(&mut y);
        fwht_normalized(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn unnormalized_fwht_twice_scales_by_n() {
        let x: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let mut y = x.clone();
        fwht_in_place(&mut y);
        fwht_in_place(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((a * 8.0 - b).abs() < 1e-4);
        }
    }

    #[test]
    fn hadamard_is_symmetric_and_orthogonal() {
        let h = hadamard_matrix(8);
        assert_eq!(h, h.transpose());
        let hh = crate::matmul::matmul(&h, &h);
        let scaled_identity = Matrix::identity(8).scale(8.0);
        assert!(hh.relative_error(&scaled_identity) < 1e-6);
    }

    #[test]
    fn fwht_rows_applies_per_row() {
        let mut m = Matrix::from_fn(3, 8, |r, c| (r * 8 + c) as f32);
        let expected: Vec<Vec<f32>> = (0..3)
            .map(|r| {
                let mut row = m.row(r).to_vec();
                fwht_in_place(&mut row);
                row
            })
            .collect();
        fwht_rows(&mut m);
        for (r, exp) in expected.iter().enumerate() {
            assert_eq!(m.row(r), exp.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fwht_rejects_non_power_of_two() {
        let mut x = vec![0.0; 10];
        fwht_in_place(&mut x);
    }
}
