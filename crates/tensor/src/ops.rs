//! Abstract linear-algebra operation descriptors ("op traces").
//!
//! The performance simulators in this workspace do not execute layer math;
//! they consume a *trace* of the operations a layer performs per batch and
//! price each operation with a device-specific cost model. This enum is the
//! shared vocabulary: `bfly-core` layers emit `LinOp` traces, and
//! `bfly-ipu` / `bfly-gpu` translate them into compute sets / kernels.

use serde::{Deserialize, Serialize};

/// One abstract device operation with enough shape information to price it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinOp {
    /// Dense matmul `C(m x n) = A(m x k) * B(k x n)`.
    MatMul {
        /// Rows of A and C.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of B and C.
        n: usize,
    },
    /// Unstructured sparse x dense multiply with `nnz` nonzeros in the sparse
    /// operand (CSR semantics).
    SpMM {
        /// Rows of the sparse operand.
        m: usize,
        /// Columns of the sparse operand / rows of the dense one.
        k: usize,
        /// Columns of the dense operand.
        n: usize,
        /// Nonzeros in the sparse operand.
        nnz: usize,
    },
    /// Block-sparse x dense multiply: `nnz_blocks` dense blocks of
    /// `block x block` (the pixelfly access pattern).
    BlockSpMM {
        /// Rows of the block-sparse operand.
        m: usize,
        /// Columns of the block-sparse operand.
        k: usize,
        /// Columns of the dense operand.
        n: usize,
        /// Side length of each dense block.
        block: usize,
        /// Number of stored blocks.
        nnz_blocks: usize,
    },
    /// One butterfly-factor application: `pairs` learnable 2x2 twiddles,
    /// each applied across `batch` batch elements (8 FLOPs per pair per
    /// element). Distinct from [`LinOp::SpMM`] because frameworks execute it
    /// as many tiny strided multiply-adds, not as a tuned sparse kernel —
    /// the distinction that drives the paper's Fig 6.
    Twiddle {
        /// Number of 2x2 twiddles in the factor (`n/2`).
        pairs: usize,
        /// Batch elements each twiddle processes.
        batch: usize,
    },
    /// Element-wise map over `n` elements costing `flops_per_elem` each
    /// (ReLU = 1, diagonal scale = 1, residual add = 1, ...).
    Elementwise {
        /// Number of elements.
        n: usize,
        /// FLOPs per element.
        flops_per_elem: u32,
    },
    /// Gather/permutation of `rows` vectors of `width` elements (pure data
    /// movement, no FLOPs).
    Permute {
        /// Number of vectors permuted.
        rows: usize,
        /// Elements per vector.
        width: usize,
    },
    /// Batched radix-2 FFT of length `n` applied to `batch` vectors.
    Fft {
        /// Transform length (power of two).
        n: usize,
        /// Number of independent transforms.
        batch: usize,
    },
    /// Batched fast Walsh-Hadamard transform.
    Fwht {
        /// Transform length (power of two).
        n: usize,
        /// Number of independent transforms.
        batch: usize,
    },
    /// Raw data copy of `bytes` bytes (host/device staging or inter-tile).
    Copy {
        /// Bytes moved.
        bytes: u64,
    },
}

impl LinOp {
    /// FLOPs performed by this operation (multiply-add counted as 2).
    pub fn flops(&self) -> f64 {
        match *self {
            LinOp::MatMul { m, k, n } => 2.0 * m as f64 * k as f64 * n as f64,
            LinOp::SpMM { n, nnz, .. } => 2.0 * nnz as f64 * n as f64,
            LinOp::BlockSpMM { n, block, nnz_blocks, .. } => {
                2.0 * nnz_blocks as f64 * (block * block) as f64 * n as f64
            }
            LinOp::Twiddle { pairs, batch } => 8.0 * pairs as f64 * batch as f64,
            LinOp::Elementwise { n, flops_per_elem } => n as f64 * flops_per_elem as f64,
            LinOp::Permute { .. } | LinOp::Copy { .. } => 0.0,
            // 5 n log2 n is the standard radix-2 FFT operation count;
            // FWHT is additions only: n log2 n.
            LinOp::Fft { n, batch } => 5.0 * (n as f64) * (n as f64).log2().max(0.0) * batch as f64,
            LinOp::Fwht { n, batch } => (n as f64) * (n as f64).log2().max(0.0) * batch as f64,
        }
    }

    /// Minimum bytes that must move through memory for this operation,
    /// assuming f32 operands and a read-once/write-once ideal.
    pub fn min_bytes(&self) -> u64 {
        const W: u64 = 4;
        match *self {
            LinOp::MatMul { m, k, n } => W * (m * k + k * n + m * n) as u64,
            LinOp::SpMM { m, k, n, nnz } => {
                // values + column indices + row pointers + dense in/out.
                W * (2 * nnz + m + 1) as u64 + W * (k * n + m * n) as u64
            }
            LinOp::BlockSpMM { m, k, n, block, nnz_blocks } => {
                W * (nnz_blocks * block * block) as u64 + W * (k * n + m * n) as u64
            }
            LinOp::Twiddle { pairs, batch } => {
                // read + write both halves across the batch, plus twiddles.
                W * (4 * pairs * batch + 4 * pairs) as u64
            }
            LinOp::Elementwise { n, .. } => 2 * W * n as u64,
            LinOp::Permute { rows, width } => 2 * W * (rows * width) as u64,
            LinOp::Fft { n, batch } => 4 * W * (n * batch) as u64, // complex in+out
            LinOp::Fwht { n, batch } => 2 * W * (n * batch) as u64,
            LinOp::Copy { bytes } => bytes,
        }
    }

    /// Arithmetic intensity in FLOPs per byte.
    pub fn intensity(&self) -> f64 {
        let b = self.min_bytes();
        if b == 0 {
            0.0
        } else {
            self.flops() / b as f64
        }
    }
}

/// Total FLOPs of a trace.
pub fn trace_flops(trace: &[LinOp]) -> f64 {
    trace.iter().map(LinOp::flops).sum()
}

/// Total minimum bytes of a trace.
pub fn trace_bytes(trace: &[LinOp]) -> u64 {
    trace.iter().map(LinOp::min_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_formula() {
        let op = LinOp::MatMul { m: 4, k: 5, n: 6 };
        assert_eq!(op.flops(), 240.0);
        assert_eq!(op.min_bytes(), 4 * (20 + 30 + 24));
    }

    #[test]
    fn spmm_flops_scale_with_nnz() {
        let dense = LinOp::MatMul { m: 100, k: 100, n: 100 };
        let sparse = LinOp::SpMM { m: 100, k: 100, n: 100, nnz: 100 }; // 99% sparse
        assert!((sparse.flops() / dense.flops() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn block_spmm_equals_spmm_at_full_blocks() {
        let blocked = LinOp::BlockSpMM { m: 64, k: 64, n: 32, block: 8, nnz_blocks: 16 };
        let flat = LinOp::SpMM { m: 64, k: 64, n: 32, nnz: 16 * 64 };
        assert_eq!(blocked.flops(), flat.flops());
    }

    #[test]
    fn pure_movement_ops_have_zero_flops() {
        assert_eq!(LinOp::Permute { rows: 10, width: 10 }.flops(), 0.0);
        assert_eq!(LinOp::Copy { bytes: 1024 }.flops(), 0.0);
        assert!(LinOp::Copy { bytes: 1024 }.min_bytes() == 1024);
    }

    #[test]
    fn fft_cheaper_than_dense_for_large_n() {
        let n = 1024;
        let fft = LinOp::Fft { n, batch: 1 };
        let mm = LinOp::MatMul { m: n, k: n, n: 1 };
        assert!(fft.flops() < mm.flops());
    }

    #[test]
    fn intensity_is_flops_per_byte() {
        let op = LinOp::MatMul { m: 128, k: 128, n: 128 };
        let expect = op.flops() / op.min_bytes() as f64;
        assert!((op.intensity() - expect).abs() < 1e-12);
    }

    #[test]
    fn trace_sums() {
        let trace =
            [LinOp::MatMul { m: 2, k: 2, n: 2 }, LinOp::Elementwise { n: 4, flops_per_elem: 1 }];
        assert_eq!(trace_flops(&trace), 16.0 + 4.0);
        assert!(trace_bytes(&trace) > 0);
    }
}
