//! Sparse matrix formats (COO and CSR) and sparse x dense products.
//!
//! The paper's Table 2 benchmarks cuSPARSE/popsparse with CSR and COO at 90 %
//! and 99 % sparsity and notes "on both GPU and IPU, CSR shows better
//! performance" — both formats are implemented so the bench harness can
//! reproduce that comparison functionally.

use crate::matrix::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Coordinate-format sparse matrix: parallel arrays of (row, col, value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coo {
    rows: usize,
    cols: usize,
    /// Row indices, one per nonzero.
    pub row_idx: Vec<u32>,
    /// Column indices, one per nonzero.
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub values: Vec<f32>,
}

/// Compressed-sparse-row matrix.
///
/// Invariants: `row_ptr.len() == rows + 1`, `row_ptr` is non-decreasing,
/// `row_ptr[rows] == col_idx.len() == values.len()`, and column indices are
/// strictly increasing within each row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// Offsets into `col_idx`/`values` per row; length `rows + 1`.
    pub row_ptr: Vec<u32>,
    /// Column index of each nonzero.
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub values: Vec<f32>,
}

impl Coo {
    /// Creates an empty COO matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, row_idx: Vec::new(), col_idx: Vec::new(), values: Vec::new() }
    }

    /// Appends a nonzero entry. Duplicate coordinates are summed on conversion.
    pub fn push(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "COO entry out of bounds");
        self.row_idx.push(r as u32);
        self.col_idx.push(c as u32);
        self.values.push(v);
    }

    /// Number of stored entries (before duplicate merging).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Matrix shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Extracts nonzeros (above `eps` in magnitude) from a dense matrix.
    pub fn from_dense(m: &Matrix, eps: f32) -> Self {
        let mut coo = Coo::new(m.rows(), m.cols());
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v.abs() > eps {
                    coo.push(r, c, v);
                }
            }
        }
        coo
    }

    /// Converts to dense, summing duplicates.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.values.len() {
            m[(self.row_idx[i] as usize, self.col_idx[i] as usize)] += self.values[i];
        }
        m
    }

    /// Converts to CSR, sorting entries and summing duplicates.
    pub fn to_csr(&self) -> Csr {
        let mut entries: Vec<(u32, u32, f32)> = self
            .row_idx
            .iter()
            .zip(&self.col_idx)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c, v))
            .collect();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut col_idx: Vec<u32> = Vec::with_capacity(entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(entries.len());
        let mut merged_rows: Vec<u32> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            if merged_rows.last() == Some(&r) && col_idx.last() == Some(&c) {
                *values.last_mut().expect("non-empty") += v;
            } else {
                merged_rows.push(r);
                col_idx.push(c);
                values.push(v);
            }
        }
        let mut row_ptr = vec![0u32; self.rows + 1];
        for &r in &merged_rows {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        let csr = Csr { rows: self.rows, cols: self.cols, row_ptr, col_idx, values };
        debug_assert!(csr.check_invariants().is_ok(), "{:?}", csr.check_invariants());
        csr
    }

    /// Sparse x dense multiply via conversion-free accumulation.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "COO spmm dimension mismatch");
        let n = dense.cols();
        let mut out = Matrix::zeros(self.rows, n);
        for i in 0..self.values.len() {
            let r = self.row_idx[i] as usize;
            let c = self.col_idx[i] as usize;
            let v = self.values[i];
            let src = dense.row(c);
            let dst = out.row_mut(r);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += v * s;
            }
        }
        out
    }
}

impl Csr {
    /// Builds a CSR matrix from a dense one, keeping entries above `eps`.
    pub fn from_dense(m: &Matrix, eps: f32) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v.abs() > eps {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Generates a uniformly random sparse matrix with exactly
    /// `round(density * rows * cols)` nonzeros drawn from `U(-1, 1)`.
    ///
    /// `density` is the fraction of nonzeros, e.g. `0.01` for the paper's
    /// "99 % sparsity" configuration.
    pub fn random(rows: usize, cols: usize, density: f64, rng: &mut impl Rng) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        let total = rows * cols;
        let target = ((total as f64) * density).round() as usize;
        // Choose nonzero positions per row with a binomial-ish split to avoid
        // materialising all `total` indices for large matrices.
        let per_row = target as f64 / rows.max(1) as f64;
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(target);
        let mut values = Vec::with_capacity(target);
        row_ptr.push(0u32);
        let mut cols_scratch: Vec<u32> = (0..cols as u32).collect();
        for _ in 0..rows {
            // Jitter row occupancy by +-1 so the total is close to target.
            let k_f = per_row + rng.gen_range(-0.5f64..0.5);
            let k = (k_f.round().max(0.0) as usize).min(cols);
            let (chosen, _) = cols_scratch.partial_shuffle(rng, k);
            chosen.sort_unstable();
            for &c in chosen.iter() {
                col_idx.push(c);
                values.push(rng.gen_range(-1.0..1.0));
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of nonzero entries.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Matrix shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for i in start..end {
                m[(r, self.col_idx[i] as usize)] += self.values[i];
            }
        }
        m
    }

    /// Converts to COO format.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        for r in 0..self.rows {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for i in start..end {
                coo.push(r, self.col_idx[i] as usize, self.values[i]);
            }
        }
        coo
    }

    /// Sparse matrix x dense vector product.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, x.len(), "CSR spmv dimension mismatch");
        (0..self.rows)
            .map(|r| {
                let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                self.col_idx[start..end]
                    .iter()
                    .zip(&self.values[start..end])
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum()
            })
            .collect()
    }

    /// Sparse x dense multiply `C = S * D`, parallelised over output rows.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "CSR spmm dimension mismatch");
        let n = dense.cols();
        let mut out = Matrix::zeros(self.rows, n);
        let dense_data = dense.as_slice();
        out.as_mut_slice().par_chunks_mut(n.max(1)).enumerate().for_each(|(r, out_row)| {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for i in start..end {
                let c = self.col_idx[i] as usize;
                let v = self.values[i];
                let src = &dense_data[c * n..(c + 1) * n];
                for (d, s) in out_row.iter_mut().zip(src) {
                    *d += v * s;
                }
            }
        });
        out
    }

    /// Transposed matrix in CSR form (counting sort over columns).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0u32; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for i in start..end {
                let c = self.col_idx[i] as usize;
                let dst = cursor[c] as usize;
                col_idx[dst] = r as u32;
                values[dst] = self.values[i];
                cursor[c] += 1;
            }
        }
        Csr { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }

    /// Validates the CSR structural invariants; returns a description of the
    /// first violation if any.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err(format!(
                "row_ptr length {} != rows + 1 = {}",
                self.row_ptr.len(),
                self.rows + 1
            ));
        }
        if self.row_ptr[0] != 0 {
            return Err("row_ptr[0] != 0".into());
        }
        if *self.row_ptr.last().expect("row_ptr non-empty") as usize != self.values.len() {
            return Err("row_ptr[rows] != nnz".into());
        }
        if self.col_idx.len() != self.values.len() {
            return Err("col_idx / values length mismatch".into());
        }
        for r in 0..self.rows {
            if self.row_ptr[r] > self.row_ptr[r + 1] {
                return Err(format!("row_ptr decreasing at row {r}"));
            }
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut last: Option<u32> = None;
            for &c in &self.col_idx[start..end] {
                if c as usize >= self.cols {
                    return Err(format!("column {c} out of bounds in row {r}"));
                }
                if let Some(prev) = last {
                    if c <= prev {
                        return Err(format!("columns not strictly increasing in row {r}"));
                    }
                }
                last = Some(c);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul;
    use crate::rng::seeded_rng;

    #[test]
    fn dense_round_trip_csr() {
        let mut rng = seeded_rng(1);
        let mut d = Matrix::random_uniform(20, 30, 1.0, &mut rng);
        // Sparsify.
        d.map_in_place(|x| if x.abs() < 0.8 { 0.0 } else { x });
        let csr = Csr::from_dense(&d, 0.0);
        assert!(csr.check_invariants().is_ok());
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn dense_round_trip_coo() {
        let mut rng = seeded_rng(2);
        let mut d = Matrix::random_uniform(15, 17, 1.0, &mut rng);
        d.map_in_place(|x| if x.abs() < 0.7 { 0.0 } else { x });
        let coo = Coo::from_dense(&d, 0.0);
        assert_eq!(coo.to_dense(), d);
    }

    #[test]
    fn coo_to_csr_matches_dense_path() {
        let mut rng = seeded_rng(3);
        let csr = Csr::random(25, 40, 0.1, &mut rng);
        let coo = csr.to_coo();
        let back = coo.to_csr();
        assert!(back.check_invariants().is_ok());
        assert_eq!(back.to_dense(), csr.to_dense());
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.5);
        coo.push(0, 1, 2.5);
        coo.push(1, 0, -1.0);
        let d = coo.to_dense();
        assert_eq!(d[(0, 1)], 4.0);
        let csr = coo.to_csr();
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let mut rng = seeded_rng(4);
        let csr = Csr::random(31, 45, 0.1, &mut rng);
        let dense = Matrix::random_uniform(45, 12, 1.0, &mut rng);
        let via_sparse = csr.spmm(&dense);
        let via_dense = matmul(&csr.to_dense(), &dense);
        assert!(via_sparse.relative_error(&via_dense) < 1e-5);

        let coo = csr.to_coo();
        assert!(coo.spmm(&dense).relative_error(&via_dense) < 1e-5);
    }

    #[test]
    fn spmv_matches_spmm_single_column() {
        let mut rng = seeded_rng(5);
        let csr = Csr::random(20, 20, 0.2, &mut rng);
        let x: Vec<f32> = (0..20).map(|i| (i as f32).sin()).collect();
        let y = csr.spmv(&x);
        let xm = Matrix::from_vec(20, 1, x);
        let ym = csr.spmm(&xm);
        for (i, v) in y.iter().enumerate() {
            assert!((v - ym[(i, 0)]).abs() < 1e-5);
        }
    }

    #[test]
    fn random_density_is_close_to_target() {
        let mut rng = seeded_rng(6);
        for &density in &[0.01, 0.1, 0.5] {
            let csr = Csr::random(256, 256, density, &mut rng);
            assert!(csr.check_invariants().is_ok());
            let got = csr.density();
            assert!(
                (got - density).abs() < density * 0.2 + 0.003,
                "density {got} too far from {density}"
            );
        }
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let mut rng = seeded_rng(7);
        let csr = Csr::random(18, 27, 0.15, &mut rng);
        let t = csr.transpose();
        assert!(t.check_invariants().is_ok());
        assert_eq!(t.to_dense(), csr.to_dense().transpose());
    }

    #[test]
    fn empty_matrix_is_valid() {
        let csr = Csr::from_dense(&Matrix::zeros(4, 4), 0.0);
        assert_eq!(csr.nnz(), 0);
        assert!(csr.check_invariants().is_ok());
        assert_eq!(csr.spmv(&[0.0; 4]), vec![0.0; 4]);
    }
}
