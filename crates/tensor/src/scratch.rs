//! Reusable scratch buffers for allocation-free hot paths.
//!
//! The fused butterfly kernels need a transform-width working row per row
//! block, and the serving workers call them thousands of times per second.
//! Allocating those intermediates per call puts the allocator on the hot
//! path; [`Scratch`] instead pools the buffers so a steady-state forward
//! allocates nothing beyond its output matrix. Each worker (or training
//! layer) owns its own `Scratch`, which is what lets the inference path take
//! `&self` on the model: all mutable state lives in the caller.

/// A pool of reusable `f32` buffers.
///
/// [`take`](Scratch::take) hands out a buffer of the requested length
/// (recycling a previously [`put`](Scratch::put) one when available) and
/// [`put`] returns it for reuse. Buffer contents after `take` are
/// unspecified — callers must write before reading.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a buffer of exactly `len` elements with unspecified contents.
    ///
    /// Reuses the most recently returned buffer when one exists (resizing it
    /// in place, which keeps its capacity across calls of varying length);
    /// otherwise allocates. Pair with [`put`](Scratch::put) to recycle.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.pool.pop() {
            Some(mut buf) => {
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer taken with [`take`](Scratch::take) to the pool.
    pub fn put(&mut self, buf: Vec<f32>) {
        self.pool.push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_requested_length() {
        let mut s = Scratch::new();
        assert_eq!(s.take(17).len(), 17);
        assert_eq!(s.take(0).len(), 0);
    }

    #[test]
    fn put_then_take_reuses_the_buffer() {
        let mut s = Scratch::new();
        let buf = s.take(64);
        let ptr = buf.as_ptr();
        s.put(buf);
        let again = s.take(32);
        assert_eq!(again.len(), 32);
        assert_eq!(again.as_ptr(), ptr, "shrinking take should reuse the same allocation");
    }

    #[test]
    fn growing_take_keeps_working() {
        let mut s = Scratch::new();
        s.put(vec![1.0; 8]);
        let big = s.take(1024);
        assert_eq!(big.len(), 1024);
    }
}
