//! Dense row-major `f32` matrices.
//!
//! This is the workhorse container of the workspace: activations, weights and
//! materialised factorizations are all [`Matrix`] values. The layout is plain
//! row-major with no stride tricks, which keeps kernels simple and lets rayon
//! split work by row slices without aliasing concerns.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32` values.
///
/// Invariant: `data.len() == rows * cols` at all times.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer as a matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Fills a matrix with samples from `U(-scale, scale)`.
    pub fn random_uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self { rows, cols, data }
    }

    /// Fills a matrix with `N(0, std^2)` samples (Box-Muller, deterministic per RNG).
    pub fn random_normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat element slice (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat element slice (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose: keeps both source and destination accesses within
        // a cache-line-friendly window.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Element-wise sum; shapes must match.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference; shapes must match.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place scaling.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in hadamard");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Relative Frobenius distance `|self - other|_F / max(|other|_F, eps)`.
    pub fn relative_error(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in relative_error");
        let denom = other.frobenius_norm().max(1e-12);
        self.sub(other).frobenius_norm() / denom
    }

    /// Number of elements whose absolute value exceeds `eps`.
    pub fn count_nonzero(&self, eps: f32) -> usize {
        self.data.iter().filter(|x| x.abs() > eps).count()
    }

    /// Extracts a sub-matrix (copy) of `height x width` starting at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the window exceeds the matrix bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, height: usize, width: usize) -> Matrix {
        assert!(r0 + height <= self.rows && c0 + width <= self.cols, "submatrix out of bounds");
        let mut out = Matrix::zeros(height, width);
        for r in 0..height {
            let src = &self.data[(r0 + r) * self.cols + c0..(r0 + r) * self.cols + c0 + width];
            out.row_mut(r).copy_from_slice(src);
        }
        out
    }

    /// Writes `block` into `self` starting at `(r0, c0)`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "set_submatrix out of bounds"
        );
        for r in 0..block.rows {
            let dst_start = (r0 + r) * self.cols + c0;
            self.data[dst_start..dst_start + block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Pads with zeros to the given shape (must be >= current shape).
    pub fn zero_pad(&self, rows: usize, cols: usize) -> Matrix {
        assert!(rows >= self.rows && cols >= self.cols, "zero_pad must grow the matrix");
        let mut out = Matrix::zeros(rows, cols);
        out.set_submatrix(0, 0, self);
        out
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|x| *x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a new matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let data = self.data.iter().map(|x| f(*x)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let row = self.row(r);
            let show_cols = row.len().min(8);
            write!(f, "  [")?;
            for (i, v) in row[..show_cols].iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if row.len() > show_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = seeded_rng(7);
        let m = Matrix::random_uniform(37, 53, 1.0, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Matrix::from_fn(5, 9, |r, c| (r * 100 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (9, 5));
        for r in 0..5 {
            for c in 0..9 {
                assert_eq!(t[(c, r)], m[(r, c)]);
            }
        }
    }

    #[test]
    fn add_sub_axpy_are_consistent() {
        let mut rng = seeded_rng(1);
        let a = Matrix::random_uniform(4, 4, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 4, 1.0, &mut rng);
        let mut c = a.clone();
        c.axpy(1.0, &b);
        assert!(c.relative_error(&a.add(&b)) < 1e-6);
        assert!(a.add(&b).sub(&b).relative_error(&a) < 1e-5);
    }

    #[test]
    fn submatrix_and_set_submatrix_round_trip() {
        let m = Matrix::from_fn(6, 6, |r, c| (r * 6 + c) as f32);
        let b = m.submatrix(2, 3, 3, 2);
        assert_eq!(b[(0, 0)], m[(2, 3)]);
        let mut target = Matrix::zeros(6, 6);
        target.set_submatrix(2, 3, &b);
        assert_eq!(target[(4, 4)], m[(4, 4)]);
        assert_eq!(target[(0, 0)], 0.0);
    }

    #[test]
    fn zero_pad_preserves_content() {
        let m = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let p = m.zero_pad(5, 4);
        assert_eq!(p.shape(), (5, 4));
        assert_eq!(p.submatrix(0, 0, 3, 3), m);
        assert_eq!(p[(4, 3)], 0.0);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn random_normal_moments_are_sane() {
        let mut rng = seeded_rng(42);
        let m = Matrix::random_normal(100, 100, 2.0, &mut rng);
        let mean = m.mean();
        let var =
            m.as_slice().iter().map(|x| (*x as f64 - mean).powi(2)).sum::<f64>() / m.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn count_nonzero_with_threshold() {
        let m = Matrix::from_rows(&[&[0.0, 1e-9, 0.5, -0.5]]);
        assert_eq!(m.count_nonzero(1e-6), 2);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, 0.25]]);
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[2.0, 1.0], &[3.0, 1.0]]));
    }
}
