//! Radix-2 complex FFT, DFT matrices, and circular convolution.
//!
//! Butterfly factorization is "inspired by the Cooley-Tukey FFT algorithm"
//! (paper §2.3, Eq. 1): the FFT is the special case of a butterfly
//! factorization with fixed twiddle factors. This module provides the FFT
//! itself — used by the Circulant baseline and by tests that check a learned
//! butterfly can represent the DFT — plus an explicit `dft_matrix` for
//! cross-checking.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A complex number in rectangular form. Minimal on purpose: only the
/// operations the FFT and circulant layer need. The `add`/`sub`/`mul`
/// methods intentionally shadow the operator-trait names without
/// implementing the traits (keeping the type Copy-friendly and explicit).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

#[allow(clippy::should_implement_trait)]
impl Complex {
    /// Constructs `re + im*i`.
    #[inline]
    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline]
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// `e^{i theta}`.
    #[inline]
    pub fn from_polar(theta: f32) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex addition.
    #[inline]
    pub fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    #[inline]
    pub fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    /// Complex multiplication.
    #[inline]
    pub fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }
}

/// Returns true iff `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n` (n must be >= 1).
pub fn next_power_of_two(n: usize) -> usize {
    assert!(n >= 1);
    n.next_power_of_two()
}

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// `inverse = true` computes the unscaled inverse transform; callers must
/// divide by `n` themselves (done by [`ifft`]).
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(is_power_of_two(n), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation — this is exactly the P^(N) of Eq. 3.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // log2(n) butterfly stages — each stage is one butterfly factor B_k.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex::from_polar(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u.add(v);
                data[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a complex buffer (returns a new vector).
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, false);
    data
}

/// Inverse FFT, including the `1/n` normalisation.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, true);
    let inv_n = 1.0 / data.len() as f32;
    for c in &mut data {
        c.re *= inv_n;
        c.im *= inv_n;
    }
    data
}

/// Forward FFT of a real signal.
pub fn fft_real(input: &[f32]) -> Vec<Complex> {
    let data: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&data)
}

/// The dense `n x n` DFT matrix, split into real and imaginary parts.
///
/// `F[j][k] = e^{-2 pi i j k / n}`. Used as the ground-truth structured
/// transform in the "learn the DFT with a butterfly" example and tests.
pub fn dft_matrix(n: usize) -> (Matrix, Matrix) {
    let mut re = Matrix::zeros(n, n);
    let mut im = Matrix::zeros(n, n);
    for j in 0..n {
        for k in 0..n {
            let theta = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
            re[(j, k)] = theta.cos() as f32;
            im[(j, k)] = theta.sin() as f32;
        }
    }
    (re, im)
}

/// Circular convolution of two real signals of the same power-of-two length,
/// computed via FFT in O(n log n).
pub fn circular_convolve(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "circular convolution length mismatch");
    let fa = fft_real(a);
    let fb = fft_real(b);
    let prod: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| x.mul(*y)).collect();
    ifft(&prod).into_iter().map(|c| c.re).collect()
}

/// Naive O(n^2) circular convolution for cross-checking.
pub fn circular_convolve_naive(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    (0..n).map(|i| (0..n).map(|j| a[j] * b[(i + n - j) % n]).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex], b: &[Complex]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x.sub(*y).norm_sqr().sqrt()).fold(0.0, f32::max)
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::zero(); 8];
        x[0] = Complex::new(1.0, 0.0);
        let y = fft(&x);
        for c in y {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn fft_ifft_round_trip() {
        let x: Vec<Complex> =
            (0..64).map(|i| Complex::new((i as f32).sin(), (i as f32 * 0.3).cos())).collect();
        let y = ifft(&fft(&x));
        assert!(max_err(&x, &y) < 1e-4);
    }

    #[test]
    fn fft_matches_dft_matrix() {
        let n = 16;
        let (re, im) = dft_matrix(n);
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
        let y = fft_real(&x);
        for j in 0..n {
            let expect_re: f32 = (0..n).map(|k| re[(j, k)] * x[k]).sum();
            let expect_im: f32 = (0..n).map(|k| im[(j, k)] * x[k]).sum();
            assert!((y[j].re - expect_re).abs() < 1e-3, "row {j} re");
            assert!((y[j].im - expect_im).abs() < 1e-3, "row {j} im");
        }
    }

    #[test]
    fn fft_is_linear() {
        let x: Vec<Complex> = (0..32).map(|i| Complex::new(i as f32, 0.0)).collect();
        let y: Vec<Complex> = (0..32).map(|i| Complex::new(0.0, (i as f32).cos())).collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| a.add(*b)).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        let expected: Vec<Complex> = fx.iter().zip(&fy).map(|(a, b)| a.add(*b)).collect();
        assert!(max_err(&fsum, &expected) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut x = vec![Complex::zero(); 12];
        fft_in_place(&mut x, false);
    }

    #[test]
    fn circular_convolution_matches_naive() {
        let a: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..32).map(|i| (i as f32 * 0.11).cos()).collect();
        let fast = circular_convolve(&a, &b);
        let slow = circular_convolve_naive(&a, &b);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-3, "{f} vs {s}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> = (0..128).map(|i| Complex::new((i as f32 * 0.9).sin(), 0.0)).collect();
        let y = fft(&x);
        let ex: f32 = x.iter().map(|c| c.norm_sqr()).sum();
        let ey: f32 = y.iter().map(|c| c.norm_sqr()).sum::<f32>() / x.len() as f32;
        assert!((ex - ey).abs() / ex < 1e-4);
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(784)); // the MNIST dimension the paper notes fails
        assert_eq!(next_power_of_two(784), 1024);
        assert_eq!(next_power_of_two(1024), 1024);
    }
}
