//! # bfly-tensor
//!
//! Dense and sparse linear algebra kernels for the butterfly-factorization
//! workspace: row-major [`Matrix`], CSR/COO sparse formats, three tiers of
//! matmul kernel (naive / blocked / rayon-parallel), a radix-2 FFT, the fast
//! Walsh-Hadamard transform, permutations, and deterministic RNG plumbing.
//!
//! Everything is `f32` (matching the FP32 configurations benchmarked in the
//! paper) with `f64` accumulators only where numerical-stability tests need
//! them.

#![warn(missing_docs)]

pub mod dct;
pub mod fft;
pub mod fwht;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod perm;
pub mod rng;
pub mod scratch;
pub mod sparse;

pub use dct::{dct2, dct2_ortho, dct_matrix};
pub use fft::{fft, fft_real, ifft, Complex};
pub use fwht::{fwht_in_place, fwht_normalized};
pub use matmul::{matmul, matmul_blocked, matmul_naive, matvec, MatmulKind};
pub use matrix::Matrix;
pub use ops::LinOp;
pub use perm::Permutation;
pub use rng::{derived_rng, seeded_rng, WorkspaceRng};
pub use scratch::Scratch;
pub use sparse::{Coo, Csr};
