//! Discrete cosine transform (DCT-II) — with the DFT, one of the two named
//! transforms the paper's introduction motivates butterfly factorization
//! with ("various transformation steps, such as the discrete Fourier
//! transform (DFT) and discrete cosine transform (DCT)").
//!
//! Computed in `O(n log n)` through the radix-2 FFT via Makhoul's
//! even-odd reordering.

use crate::fft::{fft, Complex};
use crate::matrix::Matrix;

/// DCT-II of a real signal (unnormalised):
/// `X_k = sum_j x_j cos(pi (j + 1/2) k / n)`.
///
/// # Panics
/// Panics unless `x.len()` is a power of two.
pub fn dct2(x: &[f32]) -> Vec<f32> {
    let n = x.len();
    assert!(n.is_power_of_two(), "DCT length {n} must be a power of two");
    if n == 1 {
        return vec![x[0]];
    }
    // Makhoul reordering: evens ascending, then odds descending.
    let mut v = Vec::with_capacity(n);
    for j in (0..n).step_by(2) {
        v.push(Complex::new(x[j], 0.0));
    }
    for j in (1..n).step_by(2).rev() {
        v.push(Complex::new(x[j], 0.0));
    }
    let f = fft(&v);
    (0..n)
        .map(|k| {
            let theta = -std::f32::consts::PI * k as f32 / (2.0 * n as f32);
            let w = Complex::from_polar(theta);
            w.mul(f[k]).re
        })
        .collect()
}

/// Orthonormal DCT-II (the `scipy.fft.dct(..., norm="ortho")` convention).
pub fn dct2_ortho(x: &[f32]) -> Vec<f32> {
    let n = x.len();
    let mut y = dct2(x);
    let s0 = (1.0 / n as f32).sqrt();
    let s = (2.0 / n as f32).sqrt();
    for (k, v) in y.iter_mut().enumerate() {
        *v *= if k == 0 { s0 } else { s };
    }
    y
}

/// Naive O(n^2) DCT-II for cross-checking.
pub fn dct2_naive(x: &[f32]) -> Vec<f32> {
    let n = x.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|j| {
                    x[j] * (std::f64::consts::PI * (j as f64 + 0.5) * k as f64 / n as f64).cos()
                        as f32
                })
                .sum()
        })
        .collect()
}

/// The dense orthonormal DCT-II matrix.
pub fn dct_matrix(n: usize) -> Matrix {
    let s0 = (1.0 / n as f64).sqrt();
    let s = (2.0 / n as f64).sqrt();
    Matrix::from_fn(n, n, |k, j| {
        let scale = if k == 0 { s0 } else { s };
        (scale * (std::f64::consts::PI * (j as f64 + 0.5) * k as f64 / n as f64).cos()) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matvec;

    #[test]
    fn fast_dct_matches_naive() {
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.41).sin()).collect();
        let fast = dct2(&x);
        let slow = dct2_naive(&x);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-3, "{f} vs {s}");
        }
    }

    #[test]
    fn ortho_dct_matches_matrix() {
        let n = 16;
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.9).cos()).collect();
        let via_fast = dct2_ortho(&x);
        let via_matrix = matvec(&dct_matrix(n), &x);
        for (a, b) in via_fast.iter().zip(&via_matrix) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn ortho_dct_matrix_is_orthogonal() {
        let d = dct_matrix(16);
        let gram = crate::matmul::matmul(&d, &d.transpose());
        assert!(gram.relative_error(&Matrix::identity(16)) < 1e-4);
    }

    #[test]
    fn dct_of_constant_is_impulse() {
        let x = vec![1.0f32; 8];
        let y = dct2_ortho(&x);
        assert!((y[0] - (8f32).sqrt()).abs() < 1e-4);
        for v in &y[1..] {
            assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn length_one_is_identity() {
        assert_eq!(dct2(&[3.5]), vec![3.5]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = dct2(&[0.0; 12]);
    }
}
