//! Dense matrix-multiplication kernels.
//!
//! Three variants mirror the implementation tiers the paper benchmarks on
//! both devices (Table 2): a `naive` triple loop, a cache-`blocked` kernel,
//! and a rayon-`parallel` kernel that splits the output by row blocks (this is
//! the default used throughout the workspace). All kernels compute
//! `C = A * B` with `A: m x k`, `B: k x n`.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Kernel selector, mirroring the paper's implementation tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulKind {
    /// Textbook `i-j-k` triple loop ("GPU naive" / "IPU naive" tier).
    Naive,
    /// Cache-blocked `i-k-j` loop ("GPU shmem" / "IPU blocked" tier).
    Blocked,
    /// Rayon row-parallel blocked kernel ("cublas" / "poplin" tier).
    Parallel,
}

/// `C = A * B` with the selected kernel.
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn matmul_with(kind: MatmulKind, a: &Matrix, b: &Matrix) -> Matrix {
    match kind {
        MatmulKind::Naive => matmul_naive(a, b),
        MatmulKind::Blocked => matmul_blocked(a, b),
        MatmulKind::Parallel => matmul(a, b),
    }
}

/// Default high-performance multiply: rayon-parallel, register-blocked.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul inner dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }

    // Parallelise over output rows; each task reads all of B. The inner loop
    // is k-major so B rows are streamed sequentially (good hardware prefetch)
    // and the compiler can vectorise the `axpy` over the output row.
    let b_data = b.as_slice();
    c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        let a_row = a.row(i);
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b_data[kk * n..(kk + 1) * n];
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_ik * b_kj;
            }
        }
    });
    c
}

/// Textbook triple loop, kept for benchmarking and cross-checking.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[(i, kk)] * b[(kk, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Single-threaded cache-blocked kernel (`i-k-j` order, 64-wide tiles).
pub fn matmul_blocked(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    const T: usize = 64;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    let b_data = b.as_slice();
    for ib in (0..m).step_by(T) {
        for kb in (0..k).step_by(T) {
            for jb in (0..n).step_by(T) {
                let i_end = (ib + T).min(m);
                let k_end = (kb + T).min(k);
                let j_end = (jb + T).min(n);
                for i in ib..i_end {
                    let a_row = a.row(i);
                    let c_row = c.row_mut(i);
                    for kk in kb..k_end {
                        let a_ik = a_row[kk];
                        if a_ik == 0.0 {
                            continue;
                        }
                        let b_row = &b_data[kk * n..kk * n + n];
                        for j in jb..j_end {
                            c_row[j] += a_ik * b_row[j];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Matrix-vector product `y = A x`.
///
/// # Panics
/// Panics if `x.len() != A.cols()`.
pub fn matvec(a: &Matrix, x: &[f32]) -> Vec<f32> {
    assert_eq!(a.cols(), x.len(), "matvec dimension mismatch");
    a.rows_iter().map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum()).collect()
}

/// `C = A^T * B` without materialising the transpose.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b dimension mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    // Accumulate rank-1 updates row-by-row of A/B; parallelising safely would
    // need per-thread accumulators, so for large m we fall back to transpose.
    if m * n > 1 << 16 {
        return crate::matmul::matmul(&a.transpose(), b);
    }
    for kk in 0..k {
        let a_row = a.row(kk);
        let b_row = b.row(kk);
        for (i, &a_ki) in a_row.iter().enumerate() {
            if a_ki == 0.0 {
                continue;
            }
            let c_row = c.row_mut(i);
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_ki * b_kj;
            }
        }
    }
    c
}

/// `C = A * B^T` without materialising the transpose.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt dimension mismatch");
    matmul_a_bt_slice(a, b.as_slice(), b.rows())
}

/// `C = A * B^T` with `B` given as a row-major slice of `b_rows` rows of
/// width `A.cols()`.
///
/// This is the borrow-the-weights variant used by the lock-free inference
/// path: layers that keep their weights in a flat `Param` value can multiply
/// against them directly instead of cloning into a `Matrix` first. The inner
/// dot loop is identical to [`matmul_a_bt`], so results are bit-identical.
///
/// # Panics
/// Panics if `b.len() != b_rows * a.cols()`.
pub fn matmul_a_bt_slice(a: &Matrix, b: &[f32], b_rows: usize) -> Matrix {
    let k = a.cols();
    assert_eq!(b.len(), b_rows * k, "matmul_a_bt_slice dimension mismatch");
    let n = b_rows;
    let mut c = Matrix::zeros(a.rows(), n);
    if n == 0 || a.rows() == 0 {
        return c;
    }
    c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        let a_row = a.row(i);
        for (j, c_ij) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *c_ij = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn random(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = seeded_rng(seed);
        Matrix::random_uniform(m, n, 1.0, &mut rng)
    }

    #[test]
    fn all_kernels_agree() {
        let a = random(33, 47, 1);
        let b = random(47, 29, 2);
        let reference = matmul_naive(&a, &b);
        assert!(matmul_blocked(&a, &b).relative_error(&reference) < 1e-5);
        assert!(matmul(&a, &b).relative_error(&reference) < 1e-5);
        assert!(matmul_with(MatmulKind::Parallel, &a, &b).relative_error(&reference) < 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random(16, 16, 3);
        let i = Matrix::identity(16);
        assert!(matmul(&a, &i).relative_error(&a) < 1e-6);
        assert!(matmul(&i, &a).relative_error(&a) < 1e-6);
    }

    #[test]
    fn skewed_shapes_work() {
        // Extreme aspect ratios like the Fig 4 sweep.
        let a = random(256, 4, 4);
        let b = random(4, 8, 5);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (256, 8));
        assert!(c.relative_error(&matmul_naive(&a, &b)) < 1e-5);
    }

    #[test]
    fn empty_dims_yield_zeros() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(matmul(&a, &b).shape(), (0, 3));
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (4, 3));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = random(12, 9, 6);
        let x: Vec<f32> = (0..9).map(|i| i as f32 * 0.1).collect();
        let xm = Matrix::from_vec(9, 1, x.clone());
        let via_mm = matmul(&a, &xm);
        let via_mv = matvec(&a, &x);
        for (i, v) in via_mv.iter().enumerate() {
            assert!((v - via_mm[(i, 0)]).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = random(21, 13, 7);
        let b = random(21, 17, 8);
        let expected = matmul(&a.transpose(), &b);
        assert!(matmul_at_b(&a, &b).relative_error(&expected) < 1e-5);

        let a2 = random(11, 19, 9);
        let b2 = random(23, 19, 10);
        let expected2 = matmul(&a2, &b2.transpose());
        assert!(matmul_a_bt(&a2, &b2).relative_error(&expected2) < 1e-5);
    }

    #[test]
    fn slice_variant_is_bit_identical_to_matrix_variant() {
        let a = random(13, 21, 13);
        let b = random(9, 21, 14);
        let via_matrix = matmul_a_bt(&a, &b);
        let via_slice = matmul_a_bt_slice(&a, b.as_slice(), b.rows());
        assert_eq!(via_matrix.as_slice(), via_slice.as_slice());
    }

    #[test]
    fn matmul_at_b_large_path_matches() {
        // Force the transpose fallback path (m * n > 2^16).
        let a = random(8, 300, 11);
        let b = random(8, 300, 12);
        let expected = matmul(&a.transpose(), &b);
        assert!(matmul_at_b(&a, &b).relative_error(&expected) < 1e-5);
    }
}
