//! Deterministic random-number helpers.
//!
//! Every stochastic component in the workspace (weight init, synthetic data,
//! sparsity patterns) threads a seeded ChaCha8 generator through so that
//! tables and figures regenerate bit-identically across runs and platforms.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG used throughout the workspace.
pub type WorkspaceRng = ChaCha8Rng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> WorkspaceRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives an independent child RNG from a parent seed and a stream label.
///
/// Used so that, e.g., weight initialisation and data generation never share
/// a stream even when the user supplies a single experiment seed.
pub fn derived_rng(seed: u64, stream: u64) -> WorkspaceRng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.set_stream(stream);
    rng
}

/// Fills a slice with `U(-scale, scale)` samples.
pub fn fill_uniform(data: &mut [f32], scale: f32, rng: &mut impl Rng) {
    for x in data {
        *x = rng.gen_range(-scale..=scale);
    }
}

/// Fills a slice with `N(0, std^2)` samples (Box-Muller).
pub fn fill_normal(data: &mut [f32], std: f32, rng: &mut impl Rng) {
    let mut i = 0;
    while i < data.len() {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data[i] = r * theta.cos() * std;
        i += 1;
        if i < data.len() {
            data[i] = r * theta.sin() * std;
            i += 1;
        }
    }
}

/// Random +-1 signs.
pub fn fill_signs(data: &mut [f32], rng: &mut impl Rng) {
    for x in data {
        *x = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a: Vec<u32> = (0..8).map(|_| 0u32).collect();
        let mut r1 = seeded_rng(99);
        let mut r2 = seeded_rng(99);
        let s1: Vec<u32> = a.iter().map(|_| r1.gen()).collect();
        let s2: Vec<u32> = a.iter().map(|_| r2.gen()).collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn derived_streams_differ() {
        let mut r1 = derived_rng(7, 0);
        let mut r2 = derived_rng(7, 1);
        let s1: Vec<u32> = (0..8).map(|_| r1.gen()).collect();
        let s2: Vec<u32> = (0..8).map(|_| r2.gen()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn fill_signs_is_plus_minus_one() {
        let mut rng = seeded_rng(1);
        let mut v = vec![0.0; 100];
        fill_signs(&mut v, &mut rng);
        assert!(v.iter().all(|&x| x == 1.0 || x == -1.0));
        assert!(v.contains(&1.0) && v.contains(&-1.0));
    }

    #[test]
    fn fill_normal_handles_odd_lengths() {
        let mut rng = seeded_rng(2);
        let mut v = vec![0.0; 7];
        fill_normal(&mut v, 1.0, &mut rng);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
