//! Permutations — the `P^(N)` of the butterfly factorization `T = B P`.
//!
//! The paper's Eq. 2 factors a structured transform into butterfly factors
//! applied after "separation into two halves by some permutation"; the FFT
//! special case uses bit reversal / even-odd separation. This module provides
//! those permutations plus composition, inversion, and application to vectors
//! and matrix rows.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A permutation of `{0, .., n-1}`, stored as a forward map:
/// output index `i` takes input element `map[i]` (i.e. `y[i] = x[map[i]]`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// Identity permutation of size `n`.
    pub fn identity(n: usize) -> Self {
        Self { map: (0..n as u32).collect() }
    }

    /// Builds a permutation from a forward map.
    ///
    /// # Panics
    /// Panics if `map` is not a bijection on `{0, .., n-1}`.
    pub fn from_map(map: Vec<u32>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &m in &map {
            assert!((m as usize) < n, "permutation target {m} out of range");
            assert!(!seen[m as usize], "duplicate permutation target {m}");
            seen[m as usize] = true;
        }
        Self { map }
    }

    /// Uniformly random permutation.
    pub fn random(n: usize, rng: &mut impl Rng) -> Self {
        let mut map: Vec<u32> = (0..n as u32).collect();
        map.shuffle(rng);
        Self { map }
    }

    /// Bit-reversal permutation (requires power-of-two `n`).
    ///
    /// This is the initial permutation of the radix-2 FFT, i.e. the canonical
    /// `P^(N)` in Eq. 3 of the paper.
    pub fn bit_reversal(n: usize) -> Self {
        assert!(n.is_power_of_two(), "bit reversal needs power-of-two size");
        let bits = n.trailing_zeros();
        let map = (0..n as u32)
            .map(|i| if bits == 0 { i } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        Self { map }
    }

    /// Even-odd separation (perfect unshuffle): output is all even-indexed
    /// inputs followed by all odd-indexed inputs — the divide step of
    /// Cooley-Tukey (Eq. 1: "sort even and odd indices").
    pub fn even_odd(n: usize) -> Self {
        assert!(n.is_multiple_of(2), "even-odd separation needs even size");
        let half = n / 2;
        let map = (0..n as u32)
            .map(|i| if (i as usize) < half { i * 2 } else { (i - half as u32) * 2 + 1 })
            .collect();
        Self { map }
    }

    /// Size of the permuted domain.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The forward map slice (`y[i] = x[map[i]]`).
    pub fn map(&self) -> &[u32] {
        &self.map
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.map.len()];
        for (i, &m) in self.map.iter().enumerate() {
            inv[m as usize] = i as u32;
        }
        Self { map: inv }
    }

    /// Composition `self after other`: applying the result equals applying
    /// `other` first, then `self`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "composing permutations of different sizes");
        let map = self.map.iter().map(|&i| other.map[i as usize]).collect();
        Self { map }
    }

    /// Applies to a vector: `y[i] = x[map[i]]`.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.len(), "permutation size mismatch");
        self.map.iter().map(|&i| x[i as usize]).collect()
    }

    /// Applies to every column of a row-major matrix whose *rows* are the
    /// vectors being permuted — i.e. permutes the columns of each row.
    pub fn apply_to_rows(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.len(), "permutation/matrix width mismatch");
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for r in 0..m.rows() {
            let src = m.row(r);
            let dst = out.row_mut(r);
            for (i, &j) in self.map.iter().enumerate() {
                dst[i] = src[j as usize];
            }
        }
        out
    }

    /// Permutes the rows of a matrix: output row `i` is input row `map[i]`.
    pub fn apply_to_matrix_rows(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.rows(), self.len(), "permutation/matrix height mismatch");
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for (i, &j) in self.map.iter().enumerate() {
            out.row_mut(i).copy_from_slice(m.row(j as usize));
        }
        out
    }

    /// Materialises the permutation matrix `P` with `P x = apply(x)`.
    pub fn to_matrix(&self) -> Matrix {
        let n = self.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &j) in self.map.iter().enumerate() {
            m[(i, j as usize)] = 1.0;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matvec;
    use crate::rng::seeded_rng;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(p.apply(&x), x.to_vec());
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = seeded_rng(3);
        let p = Permutation::random(33, &mut rng);
        let x: Vec<f32> = (0..33).map(|i| i as f32).collect();
        let y = p.inverse().apply(&p.apply(&x));
        assert_eq!(x, y);
    }

    #[test]
    fn compose_applies_right_then_left() {
        let mut rng = seeded_rng(4);
        let p = Permutation::random(16, &mut rng);
        let q = Permutation::random(16, &mut rng);
        let x: Vec<f32> = (0..16).map(|i| (i * i) as f32).collect();
        let via_compose = p.compose(&q).apply(&x);
        let via_seq = p.apply(&q.apply(&x));
        assert_eq!(via_compose, via_seq);
    }

    #[test]
    fn bit_reversal_is_involution() {
        let p = Permutation::bit_reversal(32);
        assert_eq!(p.compose(&p), Permutation::identity(32));
    }

    #[test]
    fn even_odd_separates_halves() {
        let p = Permutation::even_odd(8);
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(p.apply(&x), vec![0.0, 2.0, 4.0, 6.0, 1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn matrix_form_matches_apply() {
        let mut rng = seeded_rng(5);
        let p = Permutation::random(12, &mut rng);
        let x: Vec<f32> = (0..12).map(|i| (i as f32).sqrt()).collect();
        let via_apply = p.apply(&x);
        let via_matrix = matvec(&p.to_matrix(), &x);
        assert_eq!(via_apply, via_matrix);
    }

    #[test]
    fn apply_to_rows_matches_per_row_apply() {
        let mut rng = seeded_rng(6);
        let p = Permutation::random(10, &mut rng);
        let m = Matrix::from_fn(4, 10, |r, c| (r * 10 + c) as f32);
        let out = p.apply_to_rows(&m);
        for r in 0..4 {
            assert_eq!(out.row(r), p.apply(m.row(r)).as_slice());
        }
    }

    #[test]
    fn apply_to_matrix_rows_permutes_rows() {
        let p = Permutation::from_map(vec![2, 0, 1]);
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let out = p.apply_to_matrix_rows(&m);
        assert_eq!(out.as_slice(), &[3.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate permutation target")]
    fn from_map_rejects_non_bijection() {
        let _ = Permutation::from_map(vec![0, 0, 1]);
    }
}
