//! Offline shim of `rand_chacha`.
//!
//! Implements a genuine ChaCha permutation with 8 rounds as the keystream
//! source. Output is deterministic per (seed, stream) and of full ChaCha
//! quality, but the word stream is *not* byte-compatible with upstream
//! `rand_chacha` (the workspace only needs seed-determinism, not upstream
//! compatibility).

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha with 8 rounds, seedable and multi-stream.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// 64-bit stream id (nonce words).
    stream: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    /// Selects an independent keystream for the same seed (nonce words).
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            self.counter = 0;
            self.index = 16;
        }
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(&input) {
            *s = s.wrapping_add(*i);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { key, counter: 0, stream: 0, block: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_of_words() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let wa: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let wb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(1);
        let wa: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let wb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn output_looks_uniform_enough() {
        // Cheap sanity check: mean of u32 samples near 2^31.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_u32() as f64).sum::<f64>() / n as f64;
        let expected = (u32::MAX as f64) / 2.0;
        assert!((mean - expected).abs() < expected * 0.02, "mean {mean}");
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v: f32 = rng.gen_range(-1.0f32..=1.0);
        assert!((-1.0..=1.0).contains(&v));
    }
}
