//! Offline shim of the `proptest` surface this workspace uses.
//!
//! Supports the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy, ...) { ... } }` DSL with range strategies, `Just`,
//! `prop::collection::vec`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!` macros. Each test runs
//! `ProptestConfig::cases` random cases from a generator seeded
//! deterministically from the test name (override with `PROPTEST_SEED`).
//! Failing inputs are reported but *not shrunk* — acceptable for CI-style
//! regression testing, which is all the workspace needs.

use rand::{Rng, SplitMix64};
use std::ops::{Range, RangeInclusive};

/// Sentinel error used by `prop_assume!` to discard a case.
pub const ASSUME_REJECTED: &str = "__proptest_assume_rejected__";

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Creates the deterministic generator backing one proptest-style test.
pub fn test_rng(test_name: &str) -> SplitMix64 {
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(v) => v.parse::<u64>().unwrap_or(0xB77F_00D5),
        Err(_) => 0xB77F_00D5,
    };
    // FNV-1a over the test name keeps per-test streams distinct.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SplitMix64::new(seed ^ h)
}

/// A source of random values for one macro argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut SplitMix64) -> Self::Value;
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SplitMix64) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SplitMix64) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SplitMix64) -> T {
        self.0.clone()
    }
}

/// Strategy sampling `bool` uniformly.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut SplitMix64) -> bool {
        rng.gen_bool(0.5)
    }
}

pub mod prop {
    //! Mirrors `proptest::prop` (collection strategies).

    pub mod collection {
        //! `prop::collection::vec` — vectors of a given length range.

        use crate::Strategy;
        use rand::{Rng, SplitMix64};
        use std::ops::Range;

        /// Strategy for vectors with length drawn from `len` and elements
        /// drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Creates a [`VecStrategy`].
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut SplitMix64) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Declares property tests (see module docs for the supported DSL subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(e) if e == $crate::ASSUME_REJECTED => {}
                        ::std::result::Result::Err(e) => panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __config.cases, e
                        ),
                    }
                }
            }
        )*
    };
}

/// Proptest-style assertion: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Proptest-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, ::std::format!($($fmt)*)
            ));
        }
    }};
}

/// Proptest-style inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            ));
        }
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::string::String::from(
                $crate::ASSUME_REJECTED,
            ));
        }
    };
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, AnyBool, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, f in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn assume_discards_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_obeys_length(v in prop::collection::vec(0u8..5, 1usize..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 5));
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
