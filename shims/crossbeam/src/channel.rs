//! MPMC channels with crossbeam's API shape.
//!
//! Semantics implemented: FIFO per channel, `Clone`-able senders and
//! receivers, disconnection when the last peer on the other side drops,
//! blocking `send`/`recv`, non-blocking `try_send`/`try_recv`, and timed
//! `recv_timeout`. A bounded channel of capacity 0 is not supported
//! (rendezvous channels are not used in this workspace).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error on [`Sender::send`]: all receivers dropped; the value comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error on [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the unsent value.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// True for the [`TrySendError::Full`] case.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error on [`Receiver::recv`]: channel empty and all senders dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error on [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error on [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded MPMC channel with capacity `cap > 0`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "this channel shim does not support rendezvous (capacity 0) channels");
    with_capacity(Some(cap))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Blocking send; fails only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(value);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking send.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.lock();
            inner.senders -= 1;
            inner.senders
        };
        if remaining == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; fails only when the channel is empty and every
    /// sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    /// Receive with an absolute deadline.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timeout_res) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator draining the channel until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.lock();
            inner.receivers -= 1;
            inner.receivers
        };
        if remaining == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator over received messages (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).expect("receiver alive");
        }
        for i in 0..10 {
            assert_eq!(rx.recv().expect("sender alive"), i);
        }
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).expect("slot");
        tx.try_send(2).expect("slot");
        let err = tx.try_send(3).expect_err("full");
        assert!(err.is_full());
        assert_eq!(rx.recv().expect("msg"), 1);
        tx.try_send(3).expect("slot again");
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).expect("receiver alive");
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(9).expect("receiver alive");
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
    }

    #[test]
    fn blocking_send_waits_for_capacity() {
        let (tx, rx) = bounded(1);
        tx.send(1).expect("slot");
        let t = thread::spawn(move || tx.send(2).expect("capacity appears"));
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        t.join().expect("sender finishes");
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).expect("receivers alive");
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().expect("producer ok");
        }
        let mut all: Vec<u64> =
            consumers.into_iter().flat_map(|c| c.join().expect("consumer ok")).collect();
        all.sort_unstable();
        let mut expect: Vec<u64> =
            (0..4).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
