//! Offline shim of the `crossbeam` API surface this workspace uses:
//! [`channel`] — MPMC bounded/unbounded channels with blocking, non-blocking
//! and timed operations, built on `std::sync::{Mutex, Condvar}`.

pub mod channel;
