//! Offline shim of `serde`.
//!
//! The workspace only ever serializes (to JSON, via `serde_json`), so this
//! shim replaces serde's visitor architecture with a direct value-tree model:
//! [`Serialize`] converts any value into a [`Value`], and `serde_json`
//! renders that tree. [`Deserialize`] is a marker trait so that
//! `#[derive(Deserialize)]` sites keep compiling; nothing in the workspace
//! parses JSON back.

extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree (the serialization target).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] tree (the shim's serialization trait).
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Marker trait backing `#[derive(Deserialize)]` sites (no deserialization
/// happens in this workspace).
pub trait Deserialize {}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value(), self.2.to_json_value()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json_value())).collect())
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_json_value(&self) -> Value {
        // Deterministic output: sort hash-map keys.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_json_value(), Value::UInt(3));
        assert_eq!((-3i32).to_json_value(), Value::Int(-3));
        assert_eq!(1.5f32.to_json_value(), Value::Float(1.5));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("x".to_json_value(), Value::Str("x".into()));
        assert_eq!(Option::<u32>::None.to_json_value(), Value::Null);
    }

    #[test]
    fn collections_nest() {
        let v = vec![1u32, 2];
        assert_eq!(v.to_json_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        let pair = ("a".to_string(), 1u8);
        assert_eq!(
            pair.to_json_value(),
            Value::Array(vec![Value::Str("a".into()), Value::UInt(1)])
        );
    }

    #[test]
    fn derived_struct_serializes_named_fields_in_order() {
        #[derive(Serialize)]
        struct Row {
            n: usize,
            value: f64,
        }
        let v = Row { n: 1, value: 2.0 }.to_json_value();
        assert_eq!(
            v,
            Value::Object(vec![("n".into(), Value::UInt(1)), ("value".into(), Value::Float(2.0)),])
        );
    }

    #[test]
    fn derived_enum_covers_all_variant_shapes() {
        #[derive(Serialize)]
        enum E {
            Unit,
            Newtype(u32),
            Tuple(u32, u32),
            Struct { a: u32 },
        }
        assert_eq!(E::Unit.to_json_value(), Value::Str("Unit".into()));
        assert_eq!(
            E::Newtype(1).to_json_value(),
            Value::Object(vec![("Newtype".into(), Value::UInt(1))])
        );
        assert_eq!(
            E::Tuple(1, 2).to_json_value(),
            Value::Object(vec![(
                "Tuple".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)])
            )])
        );
        assert_eq!(
            E::Struct { a: 5 }.to_json_value(),
            Value::Object(vec![(
                "Struct".into(),
                Value::Object(vec![("a".into(), Value::UInt(5))])
            )])
        );
    }

    #[test]
    fn derived_tuple_struct_is_newtype_or_array() {
        #[derive(Serialize, Deserialize)]
        struct Id(u32);
        #[derive(Serialize)]
        struct Pair(u32, u32);
        assert_eq!(Id(7).to_json_value(), Value::UInt(7));
        assert_eq!(Pair(1, 2).to_json_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
    }

    #[test]
    fn derived_struct_with_generic_like_field_types() {
        #[derive(Serialize)]
        struct Nested {
            items: Vec<(String, u64)>,
            opt: Option<f32>,
        }
        let v = Nested { items: vec![("k".into(), 9)], opt: Some(0.5) }.to_json_value();
        match v {
            Value::Object(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, "items");
                assert_eq!(fields[1].0, "opt");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
