//! Offline shim of the `rayon` API surface this workspace uses.
//!
//! `par_chunks`, `par_chunks_mut`, `par_iter`, `par_iter_mut` and
//! `into_par_iter` return the corresponding *standard sequential* iterators,
//! so every downstream combinator chain (`zip`, `enumerate`, `map`,
//! `for_each`, `sum`, `collect`, …) compiles and behaves identically — minus
//! the parallel speedup. Real multi-threading in the workspace comes from the
//! explicit worker pools (e.g. `bfly-serve`), which use `std::thread`
//! directly; the data-parallel kernels degrade gracefully to sequential
//! execution here.

/// `rayon::join` — sequential fallback preserving the return contract.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads a real pool would use on this host.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// `slice.par_chunks(n)` — sequential [`std::slice::Chunks`].
pub trait ParallelSlice<T> {
    /// Chunked iteration, `rayon` spelling.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `slice.par_chunks_mut(n)` — sequential [`std::slice::ChunksMut`].
pub trait ParallelSliceMut<T> {
    /// Mutable chunked iteration, `rayon` spelling.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// `collection.par_iter()` — sequential shared iteration.
pub trait IntoParallelRefIterator<'a> {
    /// Iterator type.
    type Iter: Iterator;
    /// Shared iteration, `rayon` spelling.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator<Item = &'a T>,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// `collection.par_iter_mut()` — sequential exclusive iteration.
pub trait IntoParallelRefMutIterator<'a> {
    /// Iterator type.
    type Iter: Iterator;
    /// Exclusive iteration, `rayon` spelling.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: 'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator<Item = &'a mut T>,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// `collection.into_par_iter()` — sequential owning iteration.
pub trait IntoParallelIterator {
    /// Iterator type.
    type Iter: Iterator;
    /// Owning iteration, `rayon` spelling.
    fn into_par_iter(self) -> Self::Iter;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Iter = C::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Prelude mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_zip_enumerate_for_each_compiles_and_runs() {
        let src = [1.0f32, 2.0, 3.0, 4.0];
        let mut dst = [0.0f32; 4];
        dst.par_chunks_mut(2).zip(src.par_chunks(2)).enumerate().for_each(|(i, (d, s))| {
            for (dv, sv) in d.iter_mut().zip(s) {
                *dv = sv * (i + 1) as f32;
            }
        });
        assert_eq!(dst, [1.0, 2.0, 6.0, 8.0]);
    }

    #[test]
    fn par_iter_sums() {
        let v = vec![1u64, 2, 3];
        assert_eq!(v.par_iter().sum::<u64>(), 6);
        assert_eq!(v.into_par_iter().map(|x| x * 2).sum::<u64>(), 12);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
