//! Offline shim of the subset of the `rand` crate API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small, deterministic implementation of the `rand` surface it actually
//! calls: [`RngCore`], [`SeedableRng`], the extension trait [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`, `fill`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Sampling is *not* stream-compatible with upstream
//! `rand`; the workspace only relies on determinism for a fixed seed, which
//! this shim provides.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed via SplitMix64 (same approach
    /// as upstream, though the resulting stream differs).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as the default cheap generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a 64-bit state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Next 64-bit output.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite stream, no `None`
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// Types sampleable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty float range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive float range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related sampling (shuffle / choose).

    use super::RngCore;

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Partial Fisher–Yates: shuffles `amount` randomly chosen elements
        /// to the front, returning `(chosen, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let n = self.len();
            let amount = amount.min(n);
            for i in 0..amount {
                let j = i + (rng.next_u64() % (n - i) as u64) as usize;
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let f: f32 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let u: usize = rng.gen_range(0..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left the slice unchanged");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
