//! Offline shim of the `criterion` API surface this workspace's benches use.
//!
//! Benchmarks compile and run without crates.io access: each `Bencher::iter`
//! call times `sample_size` executions of the routine with
//! [`std::time::Instant`] and prints the mean and minimum wall time. No
//! statistical analysis, no HTML reports — just honest timings on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (configuration holder).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { samples: self.sample_size, timings: Vec::new() };
        f(&mut b);
        b.report(name);
    }
}

/// Throughput annotation (recorded but only echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.criterion.sample_size, timings: Vec::new() };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
    }

    /// Runs one benchmark without input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut b = Bencher { samples: self.criterion.sample_size, timings: Vec::new() };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label));
    }

    /// Ends the group (no-op; results were printed as they ran).
    pub fn finish(self) {}
}

/// Times a benchmark routine.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.timings = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, label: &str) {
        if self.timings.is_empty() {
            println!("bench {label:<50} (no samples)");
            return;
        }
        let total: Duration = self.timings.iter().sum();
        let mean = total / self.timings.len() as u32;
        let min = self.timings.iter().min().copied().unwrap_or_default();
        println!(
            "bench {label:<50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            mean,
            min,
            self.timings.len()
        );
    }
}

/// Declares a benchmark group function (both criterion spellings).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )*
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = selftest;
        config = Criterion::default().sample_size(3);
        targets = trivial_bench
    }

    #[test]
    fn group_macro_and_bencher_run() {
        selftest();
    }

    #[test]
    fn bench_function_runs() {
        Criterion::default().sample_size(2).bench_function("direct", |b| b.iter(|| 1 + 1));
    }
}
