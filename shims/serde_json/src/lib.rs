//! Offline shim of `serde_json`.
//!
//! Renders the [`serde::Value`] tree produced by the shimmed `serde` crate
//! as JSON text, in compact (`to_string`) or pretty (`to_string_pretty`,
//! two-space indent — same layout as upstream) form, plus a [`json!`] macro
//! covering the object/array/scalar forms the workspace uses.
//!
//! Non-finite floats render as `null` (upstream behaviour for the default
//! configuration).

use std::fmt;

pub use serde::Value;

/// Serialization error. The value-tree model cannot actually fail, so this
/// is only here to keep `Result`-shaped call sites compiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Compact JSON encoding.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Pretty JSON encoding (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

fn push_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on whole floats, matching the
                // number formatting readers of these files expect.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            push_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            push_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from literal-ish syntax.
///
/// Supports the three forms the workspace uses: `json!({"k": expr, ...})`,
/// `json!([expr, ...])` and `json!(expr)`. Values are arbitrary expressions
/// implementing `serde::Serialize` (including nested `json!` results).
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($val:expr) => {
        $crate::to_value(&$val)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_encoding_matches_expected_text() {
        let v = json!({"a": 1u32, "b": [1u8, 2u8], "c": "x"});
        assert_eq!(to_string(&v).expect("infallible"), r#"{"a":1,"b":[1,2],"c":"x"}"#);
    }

    #[test]
    fn pretty_encoding_uses_two_space_indent() {
        #[derive(serde::Serialize)]
        struct Row {
            n: usize,
            value: f64,
        }
        let body = to_string_pretty(&vec![Row { n: 1, value: 2.0 }]).expect("infallible");
        assert!(body.contains("\"n\": 1"), "body: {body}");
        assert!(body.contains("\"value\": 2.0"), "body: {body}");
        assert!(body.starts_with("[\n  {"), "body: {body}");
    }

    #[test]
    fn strings_are_escaped() {
        let s = "line\nwith \"quotes\" and \\backslash";
        let enc = to_string(&s).expect("infallible");
        assert_eq!(enc, r#""line\nwith \"quotes\" and \\backslash""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).expect("infallible"), "null");
        assert_eq!(to_string(&f64::INFINITY).expect("infallible"), "null");
    }

    #[test]
    fn json_macro_nests_through_expressions() {
        let inner: Vec<Value> = (0..2).map(|i| json!({"i": i})).collect();
        let v = json!({"series": inner, "name": "fig"});
        let text = to_string(&v).expect("infallible");
        assert_eq!(text, r#"{"series":[{"i":0},{"i":1}],"name":"fig"}"#);
    }

    #[test]
    fn empty_containers_render_compactly_in_pretty_mode() {
        let v = json!({"a": Value::Array(vec![]), "b": Value::Object(vec![])});
        let text = to_string_pretty(&v).expect("infallible");
        assert!(text.contains("\"a\": []"), "{text}");
        assert!(text.contains("\"b\": {}"), "{text}");
    }
}
