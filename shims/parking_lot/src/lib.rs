//! Offline shim of `parking_lot` built on `std::sync`.
//!
//! Provides `Mutex`, `RwLock` and `Condvar` with parking_lot's ergonomics:
//! `lock()` / `read()` / `write()` return guards directly (poisoning is
//! swallowed — a panicked holder does not poison the lock for the rest of
//! the process, matching parking_lot semantics).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion lock (non-poisoning facade over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during condvar wait")
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

/// Result of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and re-acquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Timed wait; reports whether it timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already waiting");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock (non-poisoning facade over [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().expect("waiter exits");
    }

    #[test]
    fn timed_wait_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
