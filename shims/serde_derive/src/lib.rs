//! Offline shim of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shimmed `serde` crate without depending on `syn`/`quote`: the item is
//! parsed directly from the [`proc_macro::TokenStream`] and the impl is
//! emitted as a source string. Supported item shapes (everything this
//! workspace derives on): non-generic named structs, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants.
//!
//! `Serialize` follows serde's externally-tagged JSON data model:
//! - named struct -> object of fields;
//! - newtype struct -> the inner value;
//! - tuple struct -> array;
//! - unit variant -> `"Name"`;
//! - newtype variant -> `{"Name": value}`;
//! - tuple variant -> `{"Name": [values...]}`;
//! - struct variant -> `{"Name": {fields...}}`.
//!
//! `Deserialize` emits an empty marker impl — nothing in the workspace
//! deserializes, but the derives must still compile.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    let src = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{ {} }}\n\
         }}",
        item.name, body
    );
    src.parse().expect("serde_derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src =
        format!("#[automatically_derived]\n impl ::serde::Deserialize for {} {{}}", item.name);
    src.parse().expect("serde_derive: generated impl must parse")
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tok: &TokenTree, word: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == word)
}

/// Advances past `#[...]` attributes and visibility modifiers.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // '#' plus the bracket group
        } else if i < toks.len() && is_ident(&toks[i], "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else {
            return i;
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);

    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!("serde_derive shim: expected `struct` or `enum`, got {:?}", toks[i]);
    };
    i += 1;

    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(toks.get(i), Some(t) if is_punct(t, '<')) {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let kind = if is_enum {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g))
            }
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            Some(t) if is_punct(t, ';') => ItemKind::Struct(Fields::Unit),
            other => panic!("serde_derive shim: expected struct body, got {other:?}"),
        }
    };

    Item { name, kind }
}

/// Skips tokens until a comma at angle-bracket depth zero; returns the index
/// *after* that comma (or the end of the slice).
fn skip_past_top_level_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i64;
    while i < toks.len() {
        match &toks[i] {
            t if is_punct(t, '<') => depth += 1,
            t if is_punct(t, '>') => depth -= 1,
            t if is_punct(t, ',') && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        i += 1;
        assert!(
            matches!(toks.get(i), Some(t) if is_punct(t, ':')),
            "serde_derive shim: expected `:` after field `{name}`"
        );
        i = skip_past_top_level_comma(&toks, i + 1);
        names.push(name);
    }
    names
}

fn count_tuple_fields(group: &Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_past_top_level_comma(&toks, i);
        count += 1;
    }
    count
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        i = skip_past_top_level_comma(&toks, i);
        variants.push(Variant { name, fields });
    }
    variants
}

fn named_fields_object(accessor: impl Fn(&str) -> String, names: &[String]) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_json_value({})),",
                accessor(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", entries.join(" "))
}

fn serialize_body(item: &Item) -> String {
    match &item.kind {
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::to_json_value(&self.0)".to_string()
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_json_value(&self.{k}),")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(" "))
        }
        ItemKind::Struct(Fields::Named(names)) => {
            named_fields_object(|f| format!("&self.{f}"), names)
        }
        ItemKind::Enum(variants) => {
            let ty = &item.name;
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let arm = match &v.fields {
                    Fields::Unit => format!(
                        "{ty}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{ty}::{vn}(__f0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                          ::serde::Serialize::to_json_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b}),"))
                            .collect();
                        format!(
                            "{ty}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                              ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            elems.join(" ")
                        )
                    }
                    Fields::Named(names) => {
                        let inner = named_fields_object(|f| f.to_string(), names);
                        format!(
                            "{ty}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {inner})]),",
                            names.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
                arms.push('\n');
            }
            format!("match self {{ {arms} }}")
        }
    }
}
