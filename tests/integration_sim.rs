//! Cross-crate integration tests of the device simulators driven by real
//! layer traces: the qualitative claims of the paper's evaluation must hold
//! as executable properties.

use bfly_core::{ButterflyLayer, PixelflyConfig, PixelflyLayer};
use bfly_gpu::GpuDevice;
use bfly_ipu::IpuDevice;
use bfly_nn::{Dense, Layer};
use bfly_tensor::{seeded_rng, LinOp};

/// Dense-layer trace built without materialising the (potentially
/// multi-gigabyte) weight matrix — identical to `Dense::trace`, asserted in
/// `layer_traces_match_direct_construction`.
fn dense_trace(n: usize, batch: usize) -> Vec<LinOp> {
    vec![LinOp::MatMul { m: batch, k: n, n }]
}

/// Butterfly-layer trace built without allocating twiddles — identical to
/// `ButterflyLayer::trace` for power-of-two `n`.
fn butterfly_trace(n: usize, batch: usize) -> Vec<LinOp> {
    assert!(n.is_power_of_two());
    let mut ops = vec![LinOp::Permute { rows: batch, width: n }];
    for _ in 0..n.trailing_zeros() {
        ops.push(LinOp::Twiddle { pairs: n / 2, batch });
    }
    ops.push(LinOp::Elementwise { n: batch * n, flops_per_elem: 1 });
    ops
}

#[test]
fn layer_traces_match_direct_construction() {
    let mut rng = seeded_rng(1);
    assert_eq!(Dense::new(256, 256, &mut rng).trace(32), dense_trace(256, 32));
    assert_eq!(ButterflyLayer::new(256, 256, &mut rng).trace(32), butterfly_trace(256, 32));
}

#[test]
fn gpu_butterfly_is_launch_bound_small_and_wins_large() {
    // Fig 6 GPU shape: butterfly much slower at N=2^7, faster at N=2^13.
    let gpu = GpuDevice::a30();
    let small_dense = gpu.run(&dense_trace(128, 128), false).expect("fits").seconds();
    let small_bfly = gpu.run(&butterfly_trace(128, 128), false).expect("fits").seconds();
    assert!(small_bfly > 4.0 * small_dense, "{small_bfly} vs {small_dense}");

    let large_dense = gpu.run(&dense_trace(8192, 8192), false).expect("fits").seconds();
    let large_bfly = gpu.run(&butterfly_trace(8192, 8192), false).expect("fits").seconds();
    assert!(large_bfly < large_dense, "{large_bfly} vs {large_dense}");
}

#[test]
fn ipu_speedups_are_modest_in_both_directions() {
    // Fig 6 IPU shape: worst degradation and max speedup both within ~2x —
    // the AMP units accelerate only the dense layer, and host I/O flattens
    // the curves.
    let ipu = IpuDevice::gc200();
    for e in [8u32, 10, 12] {
        let n = 1usize << e;
        let host = (4 * n * n) as u64;
        let dense = ipu.run_with_host_io(&dense_trace(n, n), host).expect("fits");
        let bfly = ipu.run_with_host_io(&butterfly_trace(n, n), host).expect("fits");
        let ratio = dense.seconds(ipu.spec()) / bfly.seconds(ipu.spec());
        assert!(
            (0.3..=2.5).contains(&ratio),
            "IPU butterfly speedup {ratio} out of band at N=2^{e}"
        );
    }
}

#[test]
fn ipu_dense_beats_gpu_dense_on_chip() {
    // Table 2: IPU poplin 44219 vs GPU cublas 9722 GFLOP/s.
    let gpu = GpuDevice::a30();
    let ipu = IpuDevice::gc200();
    let trace = dense_trace(2048, 2048);
    let g = gpu.run(&trace, false).expect("fits").seconds();
    let i = ipu.run(&trace).expect("fits").seconds(ipu.spec());
    assert!(i < g / 2.0, "IPU {i} should be well ahead of GPU {g}");
}

#[test]
fn tensor_cores_close_most_of_the_gap() {
    let gpu = GpuDevice::a30();
    let ipu = IpuDevice::gc200();
    let trace = dense_trace(2048, 2048);
    let g_tc = gpu.run(&trace, true).expect("fits").seconds();
    let i = ipu.run(&trace).expect("fits").seconds(ipu.spec());
    let ratio = g_tc / i;
    assert!((0.3..=3.0).contains(&ratio), "TC-on ratio {ratio} out of band");
}

#[test]
fn sparse_effective_gflops_exceed_peak_at_99_percent() {
    // Table 2's bold entries: dense-equivalent throughput above peak.
    let ipu = IpuDevice::gc200();
    let n = 2048;
    let dense_flops = 2.0 * (n as f64).powi(3);
    let sp = LinOp::SpMM { m: n, k: n, n, nnz: n * n / 100 };
    let eff = ipu.run(&[sp]).expect("fits").effective_gflops(dense_flops, ipu.spec());
    assert!(eff > 62_500.0, "popsparse-99% effective {eff} GFLOP/s should exceed peak");

    let gpu = GpuDevice::a30();
    let eff_gpu = gpu.run(&[sp], false).expect("fits").effective_gflops(dense_flops);
    assert!(eff_gpu > 10_300.0, "cusparse-99% effective {eff_gpu} should exceed FP32 peak");
}

#[test]
fn butterfly_survives_sizes_where_dense_ooms() {
    let ipu = IpuDevice::gc200();
    let n = 16384;
    let batch = 2048;
    assert!(ipu.run(&dense_trace(n, batch)).is_err(), "dense must OOM at {n}");
    assert!(ipu.run(&butterfly_trace(n, batch)).is_ok(), "butterfly must fit at {n}");
}

#[test]
fn pixelfly_memory_sits_between_dense_and_butterfly() {
    // Weight-dominated regime (small batch): the memory ordering of Table 4
    // parameter budgets must show up in compiled on-chip footprints too.
    let ipu = IpuDevice::gc200();
    let mut rng = seeded_rng(3);
    let n = 2048;
    let batch = 16;
    let config = PixelflyConfig { block_size: 32, butterfly_size: 8, rank: 64 };
    let pixel_trace = PixelflyLayer::new(n, n, config, &mut rng).expect("valid").trace(batch);
    let dense = ipu.run(&dense_trace(n, batch)).expect("fits").compiled.memory.data_bytes;
    let bfly = ipu.run(&butterfly_trace(n, batch)).expect("fits").compiled.memory.data_bytes;
    let pixel = ipu.run(&pixel_trace).expect("fits").compiled.memory.data_bytes;
    assert!(bfly < pixel && pixel < dense, "bfly {bfly} < pixel {pixel} < dense {dense}");
}

#[test]
fn compute_sets_scale_with_butterfly_depth() {
    // Fig 7: one compute set per factor.
    let ipu = IpuDevice::gc200();
    let cs_at =
        |n: usize| ipu.run(&butterfly_trace(n, 64)).expect("fits").compiled.memory.compute_sets;
    let small = cs_at(256); // 8 factors
    let large = cs_at(4096); // 12 factors
    assert_eq!(large - small, 4, "compute sets must grow one per factor");
}

#[test]
fn gpu_oom_hits_dense_before_butterfly() {
    // Fig 6: "torch.nn.Linear ... reaches its limit earlier due to memory
    // limitations" (on the GPU's 24 GB).
    let gpu = GpuDevice::a30();
    let n = 49152;
    assert!(gpu.run(&dense_trace(n, n), false).is_err());
    assert!(gpu.run(&butterfly_trace(32768, 32768), false).is_ok());
}
