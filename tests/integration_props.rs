//! Property-based integration tests (proptest) of cross-crate invariants:
//! math identities between the factorizations and their dense equivalents,
//! and structural properties of the simulators.

use bfly_core::{flat_butterfly_mask, BlockSparseMatrix, Butterfly, OrthoButterfly};
use bfly_ipu::exchange::point_to_point_cycles;
use bfly_ipu::{account, lower, IpuSpec};
use bfly_tensor::fft::{circular_convolve, circular_convolve_naive};
use bfly_tensor::{matvec, seeded_rng, Csr, LinOp, Matrix, Permutation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Butterfly apply always equals the materialised dense product.
    #[test]
    fn butterfly_apply_equals_dense(seed in 0u64..1000, log_n in 1u32..6) {
        let n = 1usize << log_n;
        let mut rng = seeded_rng(seed);
        let b = Butterfly::random(n, &mut rng);
        let x: Vec<f32> = (0..n).map(|i| ((i as f32 + seed as f32) * 0.37).sin()).collect();
        let via_apply = b.apply(&x);
        let via_dense = matvec(&b.materialize(), &x);
        for (a, d) in via_apply.iter().zip(&via_dense) {
            prop_assert!((a - d).abs() < 1e-3, "apply {a} vs dense {d}");
        }
    }

    /// Butterfly apply is linear: B(ax + by) = a Bx + b By.
    #[test]
    fn butterfly_is_linear(seed in 0u64..1000, a in -2.0f32..2.0, bcoef in -2.0f32..2.0) {
        let n = 16usize;
        let mut rng = seeded_rng(seed);
        let bf = Butterfly::random(n, &mut rng);
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.2).sin()).collect();
        let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.5).cos()).collect();
        let mixed: Vec<f32> = x.iter().zip(&y).map(|(xv, yv)| a * xv + bcoef * yv).collect();
        let lhs = bf.apply(&mixed);
        let bx = bf.apply(&x);
        let by = bf.apply(&y);
        for ((l, xv), yv) in lhs.iter().zip(&bx).zip(&by) {
            prop_assert!((l - (a * xv + bcoef * yv)).abs() < 1e-3);
        }
    }

    /// CSR <-> COO <-> dense conversions round-trip exactly.
    #[test]
    fn sparse_round_trips(seed in 0u64..1000, rows in 1usize..30, cols in 1usize..30,
                          density in 0.0f64..0.5) {
        let mut rng = seeded_rng(seed);
        let csr = Csr::random(rows, cols, density, &mut rng);
        prop_assert!(csr.check_invariants().is_ok());
        let via_coo = csr.to_coo().to_csr();
        prop_assert_eq!(via_coo.to_dense(), csr.to_dense());
        let via_dense = Csr::from_dense(&csr.to_dense(), 0.0);
        prop_assert_eq!(via_dense.to_dense(), csr.to_dense());
    }

    /// Block-sparse matmul equals the dense product of its materialisation.
    #[test]
    fn block_sparse_matches_dense(seed in 0u64..1000, log_grid in 1u32..4) {
        let grid = 1usize << log_grid;
        let block = 4usize;
        let n = grid * block;
        let mut rng = seeded_rng(seed);
        // log_grid >= 1, so grid >= 2 and a butterfly size of 2 is always valid.
        let mask = flat_butterfly_mask(grid, 2);
        let w = BlockSparseMatrix::random(n, n, block, mask, &mut rng);
        let x = Matrix::random_uniform(3, n, 1.0, &mut rng);
        let got = w.matmul_batch(&x);
        let expect = bfly_tensor::matmul::matmul_a_bt(&x, &w.to_dense());
        prop_assert!(got.relative_error(&expect) < 1e-4);
    }

    /// Circular convolution via FFT matches the O(n^2) definition.
    #[test]
    fn fft_convolution_matches_naive(seed in 0u64..1000, log_n in 2u32..8) {
        let n = 1usize << log_n;
        let mut rng = seeded_rng(seed);
        let a = Matrix::random_uniform(1, n, 1.0, &mut rng).into_vec();
        let b = Matrix::random_uniform(1, n, 1.0, &mut rng).into_vec();
        let fast = circular_convolve(&a, &b);
        let slow = circular_convolve_naive(&a, &b);
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() < 1e-2 * (1.0 + s.abs()), "{f} vs {s}");
        }
    }

    /// Permutations compose and invert consistently.
    #[test]
    fn permutation_algebra(seed in 0u64..1000, n in 1usize..64) {
        let mut rng = seeded_rng(seed);
        let p = Permutation::random(n, &mut rng);
        let q = Permutation::random(n, &mut rng);
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        // (p q) x == p (q x)
        prop_assert_eq!(p.compose(&q).apply(&x), p.apply(&q.apply(&x)));
        // p^-1 p == identity
        prop_assert_eq!(p.inverse().compose(&p), Permutation::identity(n));
    }

    /// Exchange cost never depends on which tiles communicate (Obs 1).
    #[test]
    fn exchange_is_distance_independent(from in 0u32..1472, to in 0u32..1472,
                                        bytes in 1u64..1_000_000) {
        prop_assume!(from != to);
        let spec = IpuSpec::gc200();
        let c1 = point_to_point_cycles(from, to, bytes, &spec);
        let c2 = point_to_point_cycles(0, 1, bytes, &spec);
        prop_assert_eq!(c1, c2);
    }

    /// Memory accounting conserves data bytes: the sum over categories is
    /// the reported total, and data equals the variables' bytes.
    #[test]
    fn memory_accounting_conserves(log_n in 4u32..9, batch in 1usize..64) {
        let n = 1usize << log_n;
        let spec = IpuSpec::gc200();
        let graph = lower(&[LinOp::MatMul { m: batch, k: n, n }], &spec);
        let report = account(&graph, &spec);
        let vars_total: u64 = graph.variables.iter().map(|v| v.bytes).sum();
        prop_assert_eq!(report.data_bytes, vars_total);
        prop_assert_eq!(
            report.total_bytes,
            report.data_bytes
                + report.vertex_bytes
                + report.exchange_code_bytes
                + report.control_bytes
        );
    }

    /// Orthogonal butterflies preserve norms for every parameter setting.
    #[test]
    fn ortho_butterfly_preserves_norm(seed in 0u64..1000, log_n in 1u32..7) {
        let n = 1usize << log_n;
        let mut rng = seeded_rng(seed);
        let b = OrthoButterfly::random(n, &mut rng);
        let x: Vec<f32> = (0..n).map(|i| ((i as f32 + 1.0) * 0.29).sin()).collect();
        let y = b.apply(&x);
        let nx: f64 = x.iter().map(|v| (*v as f64).powi(2)).sum();
        let ny: f64 = y.iter().map(|v| (*v as f64).powi(2)).sum();
        prop_assert!((nx - ny).abs() < 1e-3 * nx.max(1.0), "{nx} vs {ny}");
        // And the inverse really inverts.
        let back = b.apply_inverse(&y);
        for (a, c) in x.iter().zip(&back) {
            prop_assert!((a - c).abs() < 1e-4);
        }
    }

    /// The DCT computed via FFT matches its dense-matrix definition.
    #[test]
    fn dct_matches_dense_matrix(seed in 0u64..1000, log_n in 1u32..8) {
        let n = 1usize << log_n;
        let mut rng = seeded_rng(seed);
        let x = Matrix::random_uniform(1, n, 1.0, &mut rng).into_vec();
        let fast = bfly_tensor::dct2_ortho(&x);
        let dense = bfly_tensor::matvec(&bfly_tensor::dct_matrix(n), &x);
        for (f, d) in fast.iter().zip(&dense) {
            prop_assert!((f - d).abs() < 1e-2 * (1.0 + d.abs()), "{f} vs {d}");
        }
    }

    /// Compiled graphs are internally consistent: every compute-set vertex
    /// index is valid and every program step refers to an existing phase.
    #[test]
    fn compiled_graphs_are_well_formed(log_n in 3u32..10) {
        let n = 1usize << log_n;
        let spec = IpuSpec::gc200();
        let trace = [
            LinOp::Permute { rows: n, width: n },
            LinOp::Twiddle { pairs: n / 2, batch: n },
            LinOp::MatMul { m: n, k: n, n },
            LinOp::Elementwise { n: n * n, flops_per_elem: 1 },
        ];
        let graph = lower(&trace, &spec);
        for cs in &graph.compute_sets {
            for &v in &cs.vertices {
                prop_assert!((v as usize) < graph.vertices.len());
            }
        }
        for step in &graph.program {
            match *step {
                bfly_ipu::Step::Execute(id) => {
                    prop_assert!((id.0 as usize) < graph.compute_sets.len())
                }
                bfly_ipu::Step::DoExchange(id) => {
                    prop_assert!((id.0 as usize) < graph.exchanges.len())
                }
                bfly_ipu::Step::HostTransfer { .. } => {}
            }
        }
        for v in &graph.vertices {
            prop_assert!((v.tile as usize) < spec.tiles);
        }
    }
}
