//! Property-based integration tests of the `bfly-serve` runtime invariants:
//! no admitted request is ever lost or duplicated, per-client FIFO holds
//! under a single worker, and batched execution is bit-identical to
//! unbatched execution of the same frozen model.

use bfly_core::{build_shl_inference, Method};
use bfly_nn::Layer;
use bfly_serve::{ServeConfig, Server};
use bfly_tensor::{derived_rng, Matrix};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::time::Duration;

fn server_config(dim: usize, seed: u64, max_batch: usize, workers: usize) -> ServeConfig {
    ServeConfig {
        dim,
        classes: 10,
        seed,
        max_batch,
        max_wait: Duration::from_micros(200),
        // Large enough that these tests never shed: the invariants below
        // are about admitted requests.
        queue_capacity: 4096,
        workers,
        tensor_cores: false,
    }
}

fn random_input(dim: usize, rng: &mut ChaCha8Rng) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every admitted request is answered exactly once, with its own
    /// identity echoed back: nothing lost, nothing duplicated, under any
    /// batching configuration.
    #[test]
    fn no_request_lost_or_duplicated(seed in 0u64..500, clients in 1u64..5,
                                     per_client in 1u64..30, max_batch in 1usize..9) {
        let dim = 32;
        let server = Server::start(server_config(dim, 11, max_batch, 2), &[Method::Butterfly])
            .expect("valid config");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut handles = Vec::new();
        for s in 0..per_client {
            for c in 0..clients {
                let input = random_input(dim, &mut rng);
                let handle = server.submit("butterfly", c, s, input).expect("queue never fills");
                handles.push(((c, s), handle));
            }
        }

        let total = (clients * per_client) as usize;
        let mut seen = HashSet::with_capacity(total);
        let mut completion_ids = HashSet::with_capacity(total);
        for ((c, s), handle) in handles {
            let r = handle.wait().expect("admitted requests are always answered");
            prop_assert_eq!(r.client, c);
            prop_assert_eq!(r.seq, s);
            prop_assert!(seen.insert((c, s)), "duplicate response for ({}, {})", c, s);
            prop_assert!(completion_ids.insert(r.completed_index),
                "completion index {} reused", r.completed_index);
        }
        prop_assert_eq!(seen.len(), total);

        let snapshot = server.shutdown();
        prop_assert_eq!(snapshot.models[0].completed, total as u64);
        prop_assert_eq!(snapshot.models[0].shed, 0);
    }

    /// With a single worker, each client's requests complete in submission
    /// order (the admission queue is FIFO, the batcher preserves arrival
    /// order within and across batches, and one worker serialises batches).
    #[test]
    fn per_client_fifo_with_single_worker(seed in 0u64..500, clients in 1u64..4,
                                          per_client in 2u64..20, max_batch in 1usize..7) {
        let dim = 32;
        let server = Server::start(server_config(dim, 23, max_batch, 1), &[Method::Butterfly])
            .expect("valid config");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut handles = Vec::new();
        for s in 0..per_client {
            for c in 0..clients {
                let input = random_input(dim, &mut rng);
                let handle = server.submit("butterfly", c, s, input).expect("queue never fills");
                handles.push((c, s, handle));
            }
        }

        let mut last_completion: Vec<Option<u64>> = vec![None; clients as usize];
        let mut responses = Vec::new();
        for (c, s, handle) in handles {
            let r = handle.wait().expect("answered");
            responses.push((c, s, r.completed_index));
        }
        responses.sort_by_key(|&(c, s, _)| (c, s));
        for (c, _s, idx) in responses {
            if let Some(prev) = last_completion[c as usize] {
                prop_assert!(idx > prev,
                    "client {} completed seq out of order: {} after {}", c, idx, prev);
            }
            last_completion[c as usize] = Some(idx);
        }
        server.shutdown();
    }

    /// A response computed inside a micro-batch is bit-identical to running
    /// the same input alone through an identically-seeded frozen model:
    /// coalescing never changes the numbers.
    #[test]
    fn batched_output_bit_identical_to_unbatched(seed in 0u64..500, n in 1usize..40,
                                                 max_batch in 2usize..9) {
        let dim = 64;
        let serve_seed = 31u64;
        let server = Server::start(server_config(dim, serve_seed, max_batch, 2),
            &[Method::Butterfly]).expect("valid config");
        // The registry derives model i's weights from (seed, i); rebuild
        // model 0 out-of-band as the unbatched reference.
        let mut reference =
            build_shl_inference(Method::Butterfly, dim, 10, &mut derived_rng(serve_seed, 0))
                .expect("valid dim");

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| random_input(dim, &mut rng)).collect();
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                server.submit("butterfly", 0, i as u64, input.clone()).expect("queue never fills")
            })
            .collect();

        for (input, handle) in inputs.iter().zip(handles) {
            let r = handle.wait().expect("answered");
            let x = Matrix::from_vec(1, dim, input.clone());
            let expect = reference.forward(&x, false);
            prop_assert_eq!(r.output.as_slice(), expect.as_slice(),
                "batched output differs bit-for-bit from unbatched");
            prop_assert!(r.timing.batch_size >= 1);
        }
        server.shutdown();
    }
}
