//! Property-based integration tests of the `bfly-serve` runtime invariants:
//! no admitted request is ever lost or duplicated, per-client FIFO holds
//! under a single worker, batched execution is bit-identical to unbatched
//! execution of the same frozen model, and the content-addressed response
//! cache serves byte-identical results with exactly-once wake-ups under
//! coalescing.

use bfly_core::{build_shl_inference, Method};
use bfly_nn::Layer;
use bfly_serve::{ServeConfig, ServedFrom, Server};
use bfly_tensor::{derived_rng, Matrix};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::time::Duration;

fn server_config(dim: usize, seed: u64, max_batch: usize, workers: usize) -> ServeConfig {
    ServeConfig {
        dim,
        classes: 10,
        seed,
        max_batch,
        max_wait: Duration::from_micros(200),
        // Large enough that these tests never shed: the invariants below
        // are about admitted requests.
        queue_capacity: 4096,
        workers,
        tensor_cores: false,
        // Cache on by default: the pre-existing invariants below must hold
        // with it enabled (their inputs are random, so they mostly compute;
        // the cache-specific properties get their own tests).
        ..Default::default()
    }
}

fn random_input(dim: usize, rng: &mut ChaCha8Rng) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// (client, seq, completed_index, output) of one delivered response.
type DeliveredResponse = (u64, u64, u64, Vec<f32>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every admitted request is answered exactly once, with its own
    /// identity echoed back: nothing lost, nothing duplicated, under any
    /// batching configuration.
    #[test]
    fn no_request_lost_or_duplicated(seed in 0u64..500, clients in 1u64..5,
                                     per_client in 1u64..30, max_batch in 1usize..9) {
        let dim = 32;
        let server = Server::start(server_config(dim, 11, max_batch, 2), &[Method::Butterfly])
            .expect("valid config");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut handles = Vec::new();
        for s in 0..per_client {
            for c in 0..clients {
                let input = random_input(dim, &mut rng);
                let handle = server.submit("butterfly", c, s, input).expect("queue never fills");
                handles.push(((c, s), handle));
            }
        }

        let total = (clients * per_client) as usize;
        let mut seen = HashSet::with_capacity(total);
        let mut completion_ids = HashSet::with_capacity(total);
        for ((c, s), handle) in handles {
            let r = handle.wait().expect("admitted requests are always answered");
            prop_assert_eq!(r.client, c);
            prop_assert_eq!(r.seq, s);
            prop_assert!(seen.insert((c, s)), "duplicate response for ({}, {})", c, s);
            prop_assert!(completion_ids.insert(r.completed_index),
                "completion index {} reused", r.completed_index);
        }
        prop_assert_eq!(seen.len(), total);

        let snapshot = server.shutdown();
        prop_assert_eq!(snapshot.models[0].completed, total as u64);
        prop_assert_eq!(snapshot.models[0].shed, 0);
    }

    /// With a single worker, each client's requests complete in submission
    /// order (the admission queue is FIFO, the batcher preserves arrival
    /// order within and across batches, and one worker serialises batches).
    #[test]
    fn per_client_fifo_with_single_worker(seed in 0u64..500, clients in 1u64..4,
                                          per_client in 2u64..20, max_batch in 1usize..7) {
        let dim = 32;
        let server = Server::start(server_config(dim, 23, max_batch, 1), &[Method::Butterfly])
            .expect("valid config");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut handles = Vec::new();
        for s in 0..per_client {
            for c in 0..clients {
                let input = random_input(dim, &mut rng);
                let handle = server.submit("butterfly", c, s, input).expect("queue never fills");
                handles.push((c, s, handle));
            }
        }

        let mut last_completion: Vec<Option<u64>> = vec![None; clients as usize];
        let mut responses = Vec::new();
        for (c, s, handle) in handles {
            let r = handle.wait().expect("answered");
            responses.push((c, s, r.completed_index));
        }
        responses.sort_by_key(|&(c, s, _)| (c, s));
        for (c, _s, idx) in responses {
            if let Some(prev) = last_completion[c as usize] {
                prop_assert!(idx > prev,
                    "client {} completed seq out of order: {} after {}", c, idx, prev);
            }
            last_completion[c as usize] = Some(idx);
        }
        server.shutdown();
    }

    /// A response computed inside a micro-batch is bit-identical to running
    /// the same input alone through an identically-seeded frozen model:
    /// coalescing never changes the numbers.
    #[test]
    fn batched_output_bit_identical_to_unbatched(seed in 0u64..500, n in 1usize..40,
                                                 max_batch in 2usize..9) {
        let dim = 64;
        let serve_seed = 31u64;
        let server = Server::start(server_config(dim, serve_seed, max_batch, 2),
            &[Method::Butterfly]).expect("valid config");
        // The registry derives model i's weights from (seed, i); rebuild
        // model 0 out-of-band as the unbatched reference.
        let mut reference =
            build_shl_inference(Method::Butterfly, dim, 10, &mut derived_rng(serve_seed, 0))
                .expect("valid dim");

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| random_input(dim, &mut rng)).collect();
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                server.submit("butterfly", 0, i as u64, input.clone()).expect("queue never fills")
            })
            .collect();

        for (input, handle) in inputs.iter().zip(handles) {
            let r = handle.wait().expect("answered");
            let x = Matrix::from_vec(1, dim, input.clone());
            let expect = reference.forward(&x, false);
            prop_assert_eq!(r.output.as_slice(), expect.as_slice(),
                "batched output differs bit-for-bit from unbatched");
            prop_assert!(r.timing.batch_size >= 1);
        }
        server.shutdown();
    }

    /// Cached responses are bit-identical to computed ones: every response
    /// for input `x` — whether computed, coalesced, or served from the
    /// cache — carries exactly the bytes of an out-of-band forward of `x`
    /// through an identically-seeded frozen model. Non-computed responses
    /// must also report an honest 0 device-µs.
    #[test]
    fn cached_response_bit_identical_to_computed(seed in 0u64..500, pool in 1usize..6,
                                                 n in 10usize..60, max_batch in 1usize..9) {
        let dim = 64;
        let serve_seed = 41u64;
        let server = Server::start(server_config(dim, serve_seed, max_batch, 2),
            &[Method::Butterfly]).expect("valid config");
        let mut reference =
            build_shl_inference(Method::Butterfly, dim, 10, &mut derived_rng(serve_seed, 0))
                .expect("valid dim");

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> = (0..pool).map(|_| random_input(dim, &mut rng)).collect();
        let handles: Vec<_> = (0..n)
            .map(|i| {
                server
                    .submit("butterfly", 0, i as u64, inputs[i % pool].clone())
                    .expect("queue never fills")
            })
            .collect();

        for (i, handle) in handles.into_iter().enumerate() {
            let r = handle.wait().expect("answered");
            let x = Matrix::from_vec(1, dim, inputs[i % pool].clone());
            let expect = reference.forward(&x, false);
            prop_assert_eq!(r.output.as_slice(), expect.as_slice(),
                "cached response differs bit-for-bit from computed (source {:?})",
                r.timing.source);
            if r.timing.source != ServedFrom::Compute {
                prop_assert_eq!(r.timing.ipu_batch_us, Some(0.0));
                prop_assert_eq!(r.timing.gpu_batch_us, Some(0.0));
            }
        }

        let snapshot = server.shutdown();
        let m = &snapshot.models[0];
        prop_assert_eq!(m.completed, n as u64);
        prop_assert_eq!(m.cache_misses, pool as u64,
            "each distinct input computes exactly once");
        prop_assert_eq!(m.cache_hits + m.cache_coalesced + m.cache_misses, n as u64);
    }

    /// Exactly-once wake-ups under concurrent coalescing: many clients
    /// hammering two shared inputs each get every response exactly once,
    /// with globally unique completion indices — no lost wake-up (a
    /// `wait()` would hang/return None) and no duplicate.
    #[test]
    fn coalesced_wakeups_are_exactly_once(seed in 0u64..500, clients in 2u64..6,
                                          per_client in 5u64..25) {
        let dim = 32;
        let server = Server::start(server_config(dim, 53, 4, 2), &[Method::Butterfly])
            .expect("valid config");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> = (0..2).map(|_| random_input(dim, &mut rng)).collect();

        let results: Vec<Vec<DeliveredResponse>> = std::thread::scope(|scope| {
            let threads: Vec<_> = (0..clients)
                .map(|c| {
                    let server = &server;
                    let inputs = &inputs;
                    scope.spawn(move || {
                        (0..per_client)
                            .map(|s| {
                                let input = inputs[((c + s) % 2) as usize].clone();
                                let r = server
                                    .submit("butterfly", c, s, input)
                                    .expect("queue never fills")
                                    .wait()
                                    .expect("woken exactly once, never lost");
                                (c, s, r.completed_index, r.output)
                            })
                            .collect()
                    })
                })
                .collect();
            threads.into_iter().map(|t| t.join().expect("client thread")).collect()
        });

        let total = (clients * per_client) as usize;
        let mut seen = HashSet::with_capacity(total);
        let mut completion_ids = HashSet::with_capacity(total);
        let mut outputs: [Option<Vec<f32>>; 2] = [None, None];
        for (c, s, idx, output) in results.into_iter().flatten() {
            prop_assert!(seen.insert((c, s)), "duplicate response for ({}, {})", c, s);
            prop_assert!(completion_ids.insert(idx), "completion index {} reused", idx);
            let slot = ((c + s) % 2) as usize;
            match &outputs[slot] {
                None => outputs[slot] = Some(output),
                Some(first) => prop_assert_eq!(first.as_slice(), output.as_slice(),
                    "same input must always yield identical bytes"),
            }
        }
        prop_assert_eq!(seen.len(), total);

        let snapshot = server.shutdown();
        prop_assert_eq!(snapshot.models[0].completed, total as u64);
        prop_assert_eq!(snapshot.models[0].shed, 0);
    }

    /// A client's same-key stream completes in submission order even when
    /// served by an arbitrary mix of compute, coalescing, and cache hits:
    /// completion indices are assigned inside the cache's completion
    /// critical section, so a hit can never overtake a waiter it raced.
    #[test]
    fn same_key_stream_preserves_client_fifo(_seed in 0u64..500, n in 2u64..40,
                                             max_batch in 1usize..9) {
        let dim = 32;
        let server = Server::start(server_config(dim, 61, max_batch, 1), &[Method::Butterfly])
            .expect("valid config");
        let input = vec![0.125f32; dim];
        let handles: Vec<_> = (0..n)
            .map(|s| server.submit("butterfly", 9, s, input.clone()).expect("queue never fills"))
            .collect();
        let mut last: Option<u64> = None;
        for (s, handle) in handles.into_iter().enumerate() {
            let r = handle.wait().expect("answered");
            prop_assert_eq!(r.seq, s as u64);
            if let Some(prev) = last {
                prop_assert!(r.completed_index > prev,
                    "seq {} (source {:?}) completed index {} after {}",
                    s, r.timing.source, r.completed_index, prev);
            }
            last = Some(r.completed_index);
        }
        let snapshot = server.shutdown();
        prop_assert_eq!(snapshot.models[0].cache_misses, 1, "one key, one forward");
    }
}
