//! Property-based integration tests of the fused inference hot path:
//! `Sequential::forward_inference` must be bit-identical to the training-mode
//! forward for every Table 4 method — including ragged (non-power-of-two,
//! rectangular) shapes — and running it concurrently from many threads over
//! a shared frozen model must change nothing.

use bfly_core::{build_shl, Method, PixelflyConfig};
use bfly_nn::Layer;
use bfly_tensor::{seeded_rng, Matrix, Scratch};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fused inference equals the per-stage training forward bit-for-bit on
    /// ragged shapes, for every Table 4 method that accepts the shape
    /// (pixelfly's paper grid rejects small ragged dims; that rejection is
    /// its own test below).
    #[test]
    fn fused_inference_matches_training_forward_ragged(
        seed in 0u64..1000, dim in 9usize..40, batch in 1usize..8,
    ) {
        let classes = 4;
        let mut methods = Method::table4_all();
        methods.push(Method::OrthoButterfly);
        for method in methods {
            let mut rng = seeded_rng(seed);
            let Ok(mut model) = build_shl(method, dim, classes, &mut rng) else {
                continue;
            };
            let mut rng = seeded_rng(seed ^ 0xA5A5);
            let x = Matrix::random_uniform(batch, dim, 1.0, &mut rng);
            let train = model.forward(&x, true);
            let mut scratch = Scratch::new();
            let infer = model.forward_inference(&x, &mut scratch);
            prop_assert_eq!(
                train.as_slice(), infer.as_slice(),
                "{} diverged at dim {} batch {}", method.label(), dim, batch
            );
        }
    }

    /// Concurrent lock-free forwards over one shared model are bit-identical
    /// to the single-threaded result — no hidden shared mutable state.
    #[test]
    fn concurrent_inference_is_bit_exact(seed in 0u64..1000, batch in 1usize..6) {
        let dim = 256;
        let mut rng = seeded_rng(seed);
        let model = build_shl(Method::Butterfly, dim, 10, &mut rng).expect("valid");
        let x = Matrix::random_uniform(batch, dim, 1.0, &mut rng);
        let mut scratch = Scratch::new();
        let want = model.forward_inference(&x, &mut scratch);
        let model = Arc::new(model);
        let results: Vec<Matrix> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let model = Arc::clone(&model);
                    let x = x.clone();
                    s.spawn(move || {
                        let mut scratch = Scratch::new();
                        model.forward_inference(&x, &mut scratch)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        for got in results {
            prop_assert_eq!(got.as_slice(), want.as_slice());
        }
    }
}

/// All Table 4 methods (pixelfly included, at its conforming power-of-two
/// dimension) agree between the training forward and fused inference.
#[test]
fn fused_inference_matches_training_forward_pow2_all_methods() {
    let dim = 256;
    let mut methods = Method::table4_all();
    methods.push(Method::OrthoButterfly);
    for method in methods {
        let mut rng = seeded_rng(77);
        let mut model = build_shl(method, dim, 10, &mut rng).expect("256 fits every method");
        let x = Matrix::random_uniform(5, dim, 1.0, &mut rng);
        let train = model.forward(&x, true);
        let mut scratch = Scratch::new();
        let infer = model.forward_inference(&x, &mut scratch);
        assert_eq!(train.as_slice(), infer.as_slice(), "{} diverged", method.label());
    }
}

/// Pixelfly's paper configuration rejects dims its block grid cannot tile;
/// the ragged property test above relies on that rejection being an `Err`,
/// not a panic.
#[test]
fn pixelfly_rejects_ragged_dims_gracefully() {
    let mut rng = seeded_rng(5);
    let result = build_shl(Method::Pixelfly(PixelflyConfig::paper_default()), 33, 4, &mut rng);
    assert!(result.is_err());
}
