//! Integration tests of the extension features built on top of the paper's
//! scope: orthogonal butterfly, pruned baseline, the convolutional path,
//! multi-IPU scaling, and streaming memory.

use bfly_core::{build_shl, shl_param_count, ButterflyConv1x1, Method, OrthoButterfly};
use bfly_data::{generate_images, split, ImageSpec};
use bfly_ipu::multi::{data_parallel_step, PodSpec};
use bfly_ipu::streaming::{run_streaming, StreamingSpec};
use bfly_ipu::IpuDevice;
use bfly_nn::{
    fit, Conv2d, ConvShape, Dense, GlobalAvgPool, Layer, MaxPool2, Relu, Sequential, TrainConfig,
};
use bfly_tensor::{seeded_rng, LinOp, Matrix};

#[test]
fn ortho_butterfly_matches_paper_butterfly_budget() {
    // The decode of the paper's 16,390: rotation parametrization.
    let ours = shl_param_count(Method::OrthoButterfly, 1024, 10);
    assert_eq!(ours, 16_394);
    assert!(ours.abs_diff(16_390) <= 4);
}

#[test]
fn ortho_butterfly_trains_like_free_butterfly() {
    let spec = bfly_data::SynthSpec {
        dim: 64,
        num_classes: 4,
        samples: 400,
        latent_dim: 12,
        latent_noise: 0.5,
        pixel_noise: 0.1,
        seed: 21,
    };
    let data = bfly_data::generate(&spec);
    let mut rng = seeded_rng(22);
    let s = split(data, 0.2, 0.15, &mut rng);
    let config = TrainConfig { epochs: 15, lr: 0.02, seed: 23, ..TrainConfig::default() };
    let mut ortho = build_shl(Method::OrthoButterfly, 64, 4, &mut rng).expect("valid");
    let acc = fit(&mut ortho, &s, &config).test_accuracy;
    assert!(acc > 0.4, "ortho butterfly stuck at {acc}");
}

#[test]
fn ortho_operator_stays_orthogonal_through_training_updates() {
    // Rotations stay rotations under any angle update: the materialised
    // operator is orthogonal for *every* parameter setting.
    let mut rng = seeded_rng(24);
    let mut b = OrthoButterfly::random(16, &mut rng);
    for f in &mut b.factors {
        for a in &mut f.angles {
            *a += 0.37; // arbitrary "gradient step"
        }
    }
    let t = b.materialize();
    let gram = bfly_tensor::matmul(&t.transpose(), &t);
    assert!(gram.relative_error(&Matrix::identity(16)) < 1e-4);
}

#[test]
fn pruned_method_budget_tracks_density() {
    let lo = shl_param_count(Method::Pruned { density_permille: 10 }, 1024, 10);
    let hi = shl_param_count(Method::Pruned { density_permille: 100 }, 1024, 10);
    assert!(hi > 5 * lo);
    // And the built model agrees with the formula.
    let mut rng = seeded_rng(25);
    let model =
        build_shl(Method::Pruned { density_permille: 21 }, 1024, 10, &mut rng).expect("valid");
    assert_eq!(
        model.param_count(),
        shl_param_count(Method::Pruned { density_permille: 21 }, 1024, 10)
    );
}

#[test]
fn cnn_with_butterfly_mix_learns_gratings() {
    // Small images and four well-separated orientations keep the test fast
    // (cargo test runs unoptimised) while exercising the whole conv stack.
    let data =
        generate_images(&ImageSpec { num_classes: 4, side: 16, ..ImageSpec::gratings32(400, 31) });
    let mut rng = seeded_rng(32);
    let s = split(data, 0.2, 0.15, &mut rng);
    let channels = 16usize;
    let stem = ConvShape {
        in_channels: 1,
        out_channels: channels,
        height: 16,
        width: 16,
        kernel: 3,
        padding: 1,
    };
    let mut model = Sequential::new()
        .push(Box::new(Conv2d::new(stem, &mut rng)))
        .push(Box::new(Relu::new()))
        .push(Box::new(MaxPool2::new(channels, 16, 16)))
        .push(Box::new(ButterflyConv1x1::new(channels, channels, 8, 8, &mut rng)))
        .push(Box::new(Relu::new()))
        .push(Box::new(GlobalAvgPool::new(channels, 8, 8)))
        .push(Box::new(Dense::new(channels, 4, &mut rng)));
    let config = TrainConfig { epochs: 20, lr: 0.05, seed: 33, ..TrainConfig::default() };
    let report = fit(&mut model, &s, &config);
    // CNN training on a tiny budget is noisy; the robust signal is the loss
    // trend (the example binary demonstrates full accuracy at larger scale).
    let first = report.epochs.first().expect("epochs").train_loss;
    let last = report.epochs.last().expect("epochs").train_loss;
    assert!(last < first * 0.95, "loss barely moved: {first:.3} -> {last:.3}");
}

#[test]
fn pod_scaling_helps_butterfly_more_than_dense() {
    let n = 4096usize;
    let dense_grad = (4 * n * n) as u64;
    let bfly_grad = (4 * (2 * n * n.trailing_zeros() as usize)) as u64;
    let dense_tr = move |batch: usize| vec![LinOp::MatMul { m: batch, k: n, n }];
    let bfly_tr = move |batch: usize| {
        let mut ops = vec![LinOp::Permute { rows: batch, width: n }];
        for _ in 0..n.trailing_zeros() {
            ops.push(LinOp::Twiddle { pairs: n / 2, batch });
        }
        ops
    };
    let eff = |grad: u64, tr: &dyn Fn(usize) -> Vec<LinOp>| {
        let single = data_parallel_step(&PodSpec::with_ipus(1), 2048, grad, tr)
            .expect("fits")
            .total_seconds();
        data_parallel_step(&PodSpec::m2000(), 2048, grad, tr)
            .expect("fits")
            .scaling_efficiency(single)
    };
    let e_dense = eff(dense_grad, &dense_tr);
    let e_bfly = eff(bfly_grad, &bfly_tr);
    assert!(e_bfly > e_dense, "butterfly {e_bfly} should out-scale dense {e_dense}");
}

#[test]
fn streaming_keeps_butterfly_on_chip_where_dense_spills() {
    let ipu = IpuDevice::gc200();
    let streaming = StreamingSpec::m2000();
    let n = 16384usize;
    let batch = 256usize;
    let dense = run_streaming(&[LinOp::MatMul { m: batch, k: n, n }], ipu.spec(), &streaming)
        .expect("streams");
    assert!(!dense.fully_resident, "1 GB of dense weights cannot be resident");
    let mut bfly = vec![LinOp::Permute { rows: batch, width: n }];
    for _ in 0..n.trailing_zeros() {
        bfly.push(LinOp::Twiddle { pairs: n / 2, batch });
    }
    let b = run_streaming(&bfly, ipu.spec(), &streaming).expect("resident");
    assert!(b.fully_resident, "butterfly weights must stay on chip");
    assert!(b.seconds() < dense.seconds(), "resident butterfly must beat streamed dense");
}

#[test]
fn conv_trace_prices_on_both_simulators() {
    let mut rng = seeded_rng(41);
    let shape = ConvShape {
        in_channels: 16,
        out_channels: 32,
        height: 32,
        width: 32,
        kernel: 3,
        padding: 1,
    };
    let conv = Conv2d::new(shape, &mut rng);
    let trace = conv.trace(8);
    let gpu = bfly_gpu::GpuDevice::a30();
    let ipu = IpuDevice::gc200();
    assert!(gpu.run(&trace, false).expect("fits").seconds() > 0.0);
    assert!(ipu.run(&trace).expect("fits").seconds(ipu.spec()) > 0.0);
}
