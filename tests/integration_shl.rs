//! End-to-end integration tests of the SHL benchmark pipeline:
//! data generation -> model building -> training -> evaluation, across all
//! six structured-matrix methods.

use bfly_core::{build_shl, shl_param_count, Method, PixelflyConfig};
use bfly_data::{generate, split, SynthSpec};
use bfly_nn::{evaluate, fit, Layer, TrainConfig};
use bfly_tensor::seeded_rng;

fn small_task(dim: usize) -> bfly_data::Split {
    let spec = SynthSpec {
        dim,
        num_classes: 4,
        samples: 400,
        latent_dim: 12,
        latent_noise: 0.5,
        pixel_noise: 0.1,
        seed: 77,
    };
    let data = generate(&spec);
    let mut rng = seeded_rng(78);
    split(data, 0.2, 0.15, &mut rng)
}

fn trainable_methods() -> Vec<Method> {
    vec![
        Method::Baseline,
        Method::Butterfly,
        Method::Fastfood,
        Method::Circulant,
        Method::LowRank { rank: 8 },
        Method::Pixelfly(PixelflyConfig { block_size: 8, butterfly_size: 4, rank: 8 }),
    ]
}

#[test]
fn every_method_trains_above_chance() {
    let s = small_task(64);
    for method in trainable_methods() {
        let mut rng = seeded_rng(79);
        let mut model = build_shl(method, 64, 4, &mut rng).expect("valid configuration");
        let config = TrainConfig { epochs: 15, lr: 0.01, seed: 80, ..TrainConfig::default() };
        let report = fit(&mut model, &s, &config);
        assert!(
            report.test_accuracy > 0.40,
            "{method} stuck at {:.3} (chance = 0.25)",
            report.test_accuracy
        );
    }
}

#[test]
fn training_reduces_loss_monotonically_enough() {
    let s = small_task(64);
    let mut rng = seeded_rng(81);
    let mut model = build_shl(Method::Butterfly, 64, 4, &mut rng).expect("valid");
    let config = TrainConfig { epochs: 10, lr: 0.01, seed: 82, ..TrainConfig::default() };
    let report = fit(&mut model, &s, &config);
    let first = report.epochs.first().expect("epochs").train_loss;
    let last = report.epochs.last().expect("epochs").train_loss;
    assert!(last < first * 0.9, "loss barely moved: {first} -> {last}");
}

#[test]
fn param_counts_agree_between_builder_and_formula() {
    let mut rng = seeded_rng(83);
    for method in trainable_methods() {
        let model = build_shl(method, 64, 4, &mut rng).expect("valid");
        assert_eq!(model.param_count(), shl_param_count(method, 64, 4), "{method}");
    }
}

#[test]
fn pixelfly_rejects_mnist_but_butterfly_accepts() {
    // The paper: "the pixelfly approach did not work on the MNIST dataset
    // due to the requirements of the matrix sizes being a power of two".
    let mut rng = seeded_rng(84);
    assert!(
        build_shl(Method::Pixelfly(PixelflyConfig::paper_default()), 784, 10, &mut rng).is_err()
    );
    let mut model =
        build_shl(Method::Butterfly, 784, 10, &mut rng).expect("butterfly pads to 1024");
    // And the butterfly SHL actually runs on MNIST-like data.
    let data = generate(&SynthSpec::mnist_like(60, 85));
    let mut rng2 = seeded_rng(86);
    let s = split(data, 0.2, 0.15, &mut rng2);
    let acc = evaluate(&mut model, &s.test);
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn rank_one_low_rank_collapses() {
    // The Table 4 story behind Low-rank's 18.6% accuracy: rank 1 cannot
    // separate multiple classes.
    let s = small_task(64);
    let mut rng = seeded_rng(87);
    let mut weak = build_shl(Method::LowRank { rank: 1 }, 64, 4, &mut rng).expect("valid");
    let mut strong = build_shl(Method::LowRank { rank: 16 }, 64, 4, &mut rng).expect("valid");
    let config = TrainConfig { epochs: 15, lr: 0.01, seed: 88, ..TrainConfig::default() };
    let weak_acc = fit(&mut weak, &s, &config).test_accuracy;
    let strong_acc = fit(&mut strong, &s, &config).test_accuracy;
    assert!(
        strong_acc > weak_acc + 0.1,
        "rank-16 ({strong_acc:.3}) should clearly beat rank-1 ({weak_acc:.3})"
    );
}

#[test]
fn butterfly_beats_equal_budget_low_rank() {
    // The paper's core accuracy claim: at comparable parameter budgets the
    // butterfly's structure is worth more than a low-rank factorization.
    let s = small_task(64);
    let mut rng = seeded_rng(89);
    let butterfly_params = shl_param_count(Method::Butterfly, 64, 4);
    // Match the budget with a low-rank model: 2*64*r + 64 ~ butterfly hidden.
    let hidden_budget = butterfly_params - (64 * 4 + 4);
    let rank = ((hidden_budget - 64) / (2 * 64)).max(1);
    let mut bfly = build_shl(Method::Butterfly, 64, 4, &mut rng).expect("valid");
    let mut lr_model = build_shl(Method::LowRank { rank }, 64, 4, &mut rng).expect("valid");
    let config = TrainConfig { epochs: 20, lr: 0.01, seed: 90, ..TrainConfig::default() };
    let bfly_acc = fit(&mut bfly, &s, &config).test_accuracy;
    let lr_acc = fit(&mut lr_model, &s, &config).test_accuracy;
    // Both should learn; butterfly should not be materially worse.
    assert!(
        bfly_acc + 0.05 >= lr_acc,
        "butterfly {bfly_acc:.3} fell behind equal-budget low-rank {lr_acc:.3}"
    );
}
