//! Learning a fast transform from input/output examples (Dao et al.'s
//! headline result, paper §2.3): gradient descent over butterfly twiddles
//! recovers a structured transform it has only seen through data.
//!
//! Run with: `cargo run --release --example learn_transform`
//!
//! The target is the orthonormal Walsh-Hadamard transform — a member of the
//! butterfly class, so exact recovery is possible in principle; we train a
//! randomly initialised butterfly of matching layout against (x, Hx) pairs
//! and report the relative error of the learned operator.

use bfly_core::butterfly::Butterfly;
use bfly_tensor::{seeded_rng, Matrix, Permutation};

fn main() {
    let n = 16;
    let mut rng = seeded_rng(123);
    let target = Butterfly::hadamard(n, true);
    let target_dense = target.materialize();

    // Student: same factor layout (identity permutation), random twiddles.
    let mut student = Butterfly::random_with_perm(n, Permutation::identity(n), &mut rng);

    let lr = 0.03f32;
    let momentum = 0.9f32;
    let batch = 32usize;
    let mut velocity: Vec<Vec<f32>> =
        student.factors.iter().map(|f| vec![0.0; f.twiddles.len()]).collect();

    println!("learning the {n}-point Walsh-Hadamard transform from examples");
    println!("{:>6}  {:>12}  {:>12}", "step", "mse loss", "rel op error");
    for step in 0..=8000 {
        // Fresh random probes each step: the supervision is (x, target(x)).
        let x = Matrix::random_uniform(batch, n, 1.0, &mut rng);
        let mut grads: Vec<Vec<f32>> =
            student.factors.iter().map(|f| vec![0.0; f.twiddles.len()]).collect();
        let mut loss = 0.0f64;
        for r in 0..batch {
            let want = target.apply(x.row(r));
            let (got, cache) = student.forward_cached(x.row(r));
            let grad_out: Vec<f32> = got
                .iter()
                .zip(&want)
                .map(|(g, w)| {
                    let d = g - w;
                    loss += (d as f64).powi(2);
                    2.0 * d / (batch * n) as f32
                })
                .collect();
            let _ = student.backward_cached(&cache, &grad_out, &mut grads);
        }
        loss /= (batch * n) as f64;
        // SGD with momentum over the twiddles.
        for (s, factor) in student.factors.iter_mut().enumerate() {
            for ((tw, vel), g) in factor.twiddles.iter_mut().zip(&mut velocity[s]).zip(&grads[s]) {
                let v = momentum * *vel + g;
                *vel = v;
                *tw -= lr * v;
            }
        }
        if step % 1000 == 0 {
            let err = student.materialize().relative_error(&target_dense);
            println!("{step:>6}  {loss:>12.3e}  {err:>12.3e}");
        }
    }
    let final_err = student.materialize().relative_error(&target_dense);
    println!("\nlearned operator relative error: {final_err:.3e}");
    println!("parameters used: {} (vs {} for the dense matrix)", student.param_count(), n * n);
    assert!(final_err < 0.1, "training should converge close to the target");
    println!("=> the butterfly learned a fast O(n log n) algorithm for the transform.");
}
