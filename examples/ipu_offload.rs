//! Mapping layers onto the simulated IPU: graph compilation, PopVision-style
//! memory/execution profiles, and the out-of-memory boundary that motivates
//! the whole paper.
//!
//! Run with: `cargo run --release --example ipu_offload`

use bfly_core::{Butterfly, ButterflyLayer};
use bfly_ipu::profile::{execution_profile, memory_profile};
use bfly_ipu::{execute, IpuDevice};
use bfly_nn::{Dense, Layer};
use bfly_tensor::seeded_rng;

fn main() {
    let dev = IpuDevice::gc200();
    let spec = dev.spec();
    let mut rng = seeded_rng(5);
    println!(
        "simulated device: {} tiles x {} KiB = {:.0} MB on-chip SRAM, {:.1} TFLOPS peak\n",
        spec.tiles,
        spec.sram_per_tile / 1024,
        spec.total_sram() as f64 / 1e6,
        spec.peak_flops() / 1e12
    );

    // 1. Compile and profile a dense layer at batch 512.
    let n = 4096;
    let batch = 512;
    let dense_trace = Dense::new(n, n, &mut rng).trace(batch);
    println!("--- dense {n}x{n} layer, batch {batch} ---");
    match bfly_ipu::compile(&dense_trace, spec) {
        Ok(compiled) => {
            println!("{}", memory_profile(&compiled, spec));
            let report = execute(&compiled.graph, spec);
            println!("{}", execution_profile(&report, compiled.flops, spec));
        }
        Err(e) => println!("compilation failed: {e}\n"),
    }

    // 2. Same shape as a butterfly layer: far smaller weights, more compute
    // sets (one per factor).
    let bfly_trace = ButterflyLayer::new(n, n, &mut rng).trace(batch);
    println!("--- butterfly {n}x{n} layer, batch {batch} ---");
    match bfly_ipu::compile(&bfly_trace, spec) {
        Ok(compiled) => {
            println!("{}", memory_profile(&compiled, spec));
            let report = execute(&compiled.graph, spec);
            println!("{}", execution_profile(&report, compiled.flops, spec));
        }
        Err(e) => println!("compilation failed: {e}\n"),
    }

    // 3. Where dense stops fitting, butterfly still compiles: the memory
    // cliff of §3.3.
    let big = 16384;
    let big_batch = 2048;
    println!("--- scaling to {big}x{big}, batch {big_batch} ---");
    let dense_big = Dense::new(big, big, &mut rng).trace(big_batch);
    match bfly_ipu::compile(&dense_big, spec) {
        Ok(_) => println!("dense: fits (unexpected at this size)"),
        Err(e) => println!("dense: {e}"),
    }
    let mut rng2 = seeded_rng(6);
    let bfly_big = ButterflyLayer::new(big, big, &mut rng2).trace(big_batch);
    match bfly_ipu::compile(&bfly_big, spec) {
        Ok(c) => println!(
            "butterfly: fits with {} free bytes ({} compute sets)",
            c.memory.free_bytes, c.memory.compute_sets
        ),
        Err(e) => println!("butterfly: {e}"),
    }

    // 4. Observation 1 demo: tile distance does not matter.
    println!("\n--- exchange locality (Fig 3) ---");
    for bytes in [64u64, 4096, 262144] {
        let near = dev.tile_copy(0, 1, bytes);
        let far = dev.tile_copy(0, 644, bytes);
        println!(
            "{bytes:>7} B: (0,1) {:.0} ns, (0,644) {:.0} ns  -> identical: {}",
            near.latency_s * 1e9,
            far.latency_s * 1e9,
            near == far
        );
    }

    // 5. A butterfly big enough to *materialise* would never fit — but its
    // factorized form is tiny.
    let huge = 1 << 15;
    let b = Butterfly::random(huge, &mut rng);
    println!(
        "\na {huge}x{huge} transform: dense = {:.1} GB, butterfly = {:.1} MB",
        (huge as f64).powi(2) * 4.0 / 1e9,
        b.param_count() as f64 * 4.0 / 1e6
    );
}
