//! Post-training compression — and why the paper trains butterflies from
//! scratch instead.
//!
//! Run with: `cargo run --release --example compress_layer`
//!
//! This example attempts the tempting shortcut: train a dense SHL model,
//! project its hidden weight onto a butterfly (`fit_butterfly`), fine-tune.
//! The projection *fails to transfer the function* — an arbitrary trained
//! dense matrix has no butterfly structure to find (the class covers only
//! an O(n log n)-dimensional sliver of all matrices), so the operator error
//! stays near 1.0 and accuracy collapses until fine-tuning relearns the
//! task. Training the butterfly from scratch, as the paper does, reaches
//! dense-level accuracy directly. Structure must be trained in, not
//! retrofitted.

use bfly_core::{
    build_shl, fit_butterfly, fit_butterfly_hierarchical, FitConfig, HierarchicalConfig, Method,
};
use bfly_data::{generate, split, SynthSpec};
use bfly_nn::{evaluate, fit, Layer, TrainConfig};
use bfly_tensor::{seeded_rng, Matrix};

fn main() {
    let dim = 256usize;
    let classes = 10usize;
    let spec = SynthSpec {
        dim,
        num_classes: classes,
        samples: 2000,
        latent_dim: 24,
        latent_noise: 1.2,
        pixel_noise: 0.2,
        seed: 42,
    };
    let data = generate(&spec);
    let mut rng = seeded_rng(43);
    let s = split(data, 0.2, 0.15, &mut rng);

    // 1. Train the dense baseline.
    println!("1) training the dense SHL baseline (dim {dim})...");
    let mut dense_model = build_shl(Method::Baseline, dim, classes, &mut rng).expect("valid");
    let config = TrainConfig { epochs: 8, seed: 44, ..TrainConfig::default() };
    let report = fit(&mut dense_model, &s, &config);
    let dense_params = dense_model.param_count();
    println!(
        "   dense accuracy: {:.2}%  ({dense_params} parameters)",
        report.test_accuracy * 100.0
    );

    // 2. Extract the trained weights (hidden W is param 0; the classifier
    //    weight/bias are the last two params of the Sequential).
    let (hidden_weight, cls_w, cls_b) = {
        let ps = dense_model.params();
        let n = ps.len();
        (
            Matrix::from_vec(dim, dim, ps[0].value.clone()),
            ps[n - 2].value.clone(),
            ps[n - 1].value.clone(),
        )
    };

    // 3. Project the hidden weight onto a butterfly factorization.
    println!("2) projecting the trained {dim}x{dim} hidden weight onto a butterfly...");
    let mut fit_rng = seeded_rng(45);
    let fit_config = FitConfig { steps: 1500, lr: 0.02, ..FitConfig::default() };
    let projection =
        fit_butterfly(&hidden_weight, &fit_config, &mut fit_rng).expect("valid fit config");
    println!(
        "   operator error {:.3}; factorization keeps {:.1}% of the dense weight's parameters",
        projection.operator_error,
        100.0 * (1.0 - projection.compression)
    );
    // The deterministic hierarchical sweep (Zheng-style identification)
    // reaches the same conclusion without any gradient steps: an arbitrary
    // trained dense weight has no butterfly structure to identify.
    let sweep = fit_butterfly_hierarchical(&hidden_weight, &HierarchicalConfig::default())
        .expect("valid target");
    println!(
        "   (hierarchical identification sweep agrees: operator error {:.3})",
        sweep.operator_error
    );

    // 4. Build a butterfly SHL initialised from the projection + the trained
    //    classifier; measure accuracy before and after fine-tuning.
    println!("3) swapping the butterfly in and fine-tuning...");
    let mut compressed =
        build_shl(Method::Butterfly, dim, classes, &mut seeded_rng(46)).expect("valid");
    {
        let flat: Vec<Vec<f32>> =
            projection.butterfly.factors.iter().map(|f| f.twiddles.clone()).collect();
        let mut ps = compressed.params();
        for (s_idx, values) in flat.iter().enumerate() {
            ps[s_idx].value.copy_from_slice(values);
            ps[s_idx].mark_dirty();
        }
        let np = ps.len();
        ps[np - 2].value.copy_from_slice(&cls_w);
        ps[np - 1].value.copy_from_slice(&cls_b);
    }
    let before = evaluate(&mut compressed, &s.test);
    println!("   accuracy after projection, before fine-tune: {:.2}%", before * 100.0);
    let ft_config = TrainConfig { epochs: 10, seed: 47, ..TrainConfig::default() };
    let ft = fit(&mut compressed, &s, &ft_config);
    println!(
        "   accuracy after fine-tune: {:.2}%  ({} parameters, {:.1}% fewer)",
        ft.test_accuracy * 100.0,
        compressed.param_count(),
        100.0 * (1.0 - compressed.param_count() as f64 / dense_params as f64)
    );

    // 5. Reference: butterfly trained from scratch for longer.
    let mut scratch =
        build_shl(Method::Butterfly, dim, classes, &mut seeded_rng(48)).expect("valid");
    let scratch_report =
        fit(&mut scratch, &s, &TrainConfig { epochs: 12, seed: 49, ..TrainConfig::default() });
    println!(
        "4) butterfly trained from scratch (12 epochs): {:.2}%",
        scratch_report.test_accuracy * 100.0
    );
    println!(
        "\nlesson: projection onto the butterfly class cannot rescue an arbitrary\n\
         trained dense weight (operator error ~1.0) — the factorized structure\n\
         has to be trained in from the start, which is exactly the paper's\n\
         (and Dao et al.'s) methodology."
    );
}
