//! Serving demo: a multi-model inference server with dynamic batching.
//!
//! Run with: `cargo run --release --example serve_demo`
//!
//! Starts a `bfly-serve` server holding a dense baseline and a butterfly
//! SHL model (both forward-only — no gradient or momentum memory) on a
//! simulated 4-IPU pod *with a fault plan*: one replica crashes partway
//! into the run and recovers later, so the demo shows health-aware routing
//! riding out the outage — stranded batches retried on survivors, the
//! recovered replica re-paying its cold weight load — while a burst of
//! concurrent requests (one under an aggressive deadline) flows through.
//! Every response carries the class scores, the micro-batch the request
//! was coalesced into, the pod replica that served it, and the predicted
//! IPU/GPU device time next to measured wall time. Ends with a graceful
//! shutdown and the final metrics snapshot as JSON — including per-replica
//! crashes, recoveries, retried batches, and the weight loads cold (and
//! re-warmed) replicas paid.

use bfly_core::Method;
use bfly_serve::{FaultPlan, Routing, ServeConfig, ServedFrom, Server};
use std::time::Duration;

fn main() {
    let config = ServeConfig {
        dim: 256,
        classes: 10,
        seed: 0xD310,
        max_batch: 16,
        max_wait: Duration::from_micros(300),
        queue_capacity: 256,
        workers: 2,
        tensor_cores: false,
        replicas: 4,
        routing: Routing::PowerOfTwoChoices,
        // Replica 2 crashes once the pod has been presented 400 µs of
        // simulated compute and comes back at 1200 µs; between the two it
        // is invisible to routing, and on recovery it re-pays its weight
        // loads (its SRAM came back empty).
        fault_plan: FaultPlan::none().crash_at(400.0, 2).recover_at(1200.0, 2),
        ..Default::default()
    };
    let dim = config.dim;
    let server = Server::start(config, &[Method::Baseline, Method::Butterfly])
        .expect("dim 256 fits both methods");

    println!("serving models: {:?}\n", server.model_names());

    // A burst of requests from 4 client threads, alternating models — the
    // batchers coalesce each model's stream independently while the fault
    // plan plays out against the pod's simulated clock.
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let server = &server;
            scope.spawn(move || {
                let model = if client % 2 == 0 { "baseline" } else { "butterfly" };
                for seq in 0..50u64 {
                    let input: Vec<f32> =
                        (0..dim).map(|i| ((client + seq + i as u64) as f32 * 0.1).sin()).collect();
                    let handle = server.submit(model, client, seq, input).expect("admitted");
                    let r = handle.wait().expect("answered");
                    if seq == 49 {
                        println!(
                            "client {client} ({model:<9}): top score {:+.3}, served in a \
                             batch of {:>2} on replica {}, wall {:>4} us, predicted IPU \
                             {:>6.1} us, GPU {:>6.1} us",
                            r.output.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
                            r.timing.batch_size,
                            r.timing.replica.map_or("-".into(), |p| p.to_string()),
                            r.timing.total_us,
                            r.timing.ipu_batch_us.unwrap_or(f64::NAN),
                            r.timing.gpu_batch_us.unwrap_or(f64::NAN),
                        );
                    }
                }
            });
        }
    });

    // A per-request deadline override: zero means "already expired", so
    // the runtime answers DeadlineExceeded instead of computing.
    let doomed = server
        .submit_with_deadline("butterfly", 9, 0, vec![0.25; dim], Some(Duration::ZERO))
        .expect("admitted");
    let r = doomed.wait().expect("failures are answered, never dropped");
    assert_eq!(r.timing.source, ServedFrom::DeadlineExceeded);
    println!(
        "\ndeadline demo: client 9 seq 0 answered {:?} with empty output ({} scores)",
        r.timing.source,
        r.output.len()
    );

    println!("\nfinal metrics snapshot:");
    let snapshot = server.shutdown();
    for replica in &snapshot.replicas {
        println!(
            "replica {}: up={}, crashes={}, recoveries={}, retried_batches={}, cold_loads={}",
            replica.replica,
            replica.up,
            replica.crashes,
            replica.recoveries,
            replica.retried_batches,
            replica.cold_loads
        );
    }
    println!("{}", snapshot.to_json());
}
