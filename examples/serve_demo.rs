//! Serving demo: a multi-model inference server with dynamic batching.
//!
//! Run with: `cargo run --release --example serve_demo`
//!
//! Starts a `bfly-serve` server holding a dense baseline and a butterfly
//! SHL model (both forward-only — no gradient or momentum memory) on a
//! simulated 4-IPU pod, pushes a burst of concurrent requests at it, and
//! shows what every response carries: the class scores, the micro-batch
//! the request was coalesced into, the pod replica that served it, and the
//! predicted IPU/GPU device time for that batch next to the measured wall
//! time. Ends with a graceful shutdown and the final metrics snapshot as
//! JSON — including per-replica device time, utilization, and the one-time
//! weight loads the cold replicas paid.

use bfly_core::Method;
use bfly_serve::{Routing, ServeConfig, Server};
use std::time::Duration;

fn main() {
    let config = ServeConfig {
        dim: 256,
        classes: 10,
        seed: 0xD310,
        max_batch: 16,
        max_wait: Duration::from_micros(300),
        queue_capacity: 256,
        workers: 2,
        tensor_cores: false,
        replicas: 4,
        routing: Routing::PowerOfTwoChoices,
        ..Default::default()
    };
    let dim = config.dim;
    let server = Server::start(config, &[Method::Baseline, Method::Butterfly])
        .expect("dim 256 fits both methods");

    println!("serving models: {:?}\n", server.model_names());

    // A burst of requests from 4 client threads, alternating models — the
    // batchers coalesce each model's stream independently.
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let server = &server;
            scope.spawn(move || {
                let model = if client % 2 == 0 { "baseline" } else { "butterfly" };
                for seq in 0..50u64 {
                    let input: Vec<f32> =
                        (0..dim).map(|i| ((client + seq + i as u64) as f32 * 0.1).sin()).collect();
                    let handle = server.submit(model, client, seq, input).expect("admitted");
                    let r = handle.wait().expect("answered");
                    if seq == 49 {
                        println!(
                            "client {client} ({model:<9}): top score {:+.3}, served in a \
                             batch of {:>2} on replica {}, wall {:>4} us, predicted IPU \
                             {:>6.1} us, GPU {:>6.1} us",
                            r.output.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
                            r.timing.batch_size,
                            r.timing.replica.map_or("-".into(), |p| p.to_string()),
                            r.timing.total_us,
                            r.timing.ipu_batch_us.unwrap_or(f64::NAN),
                            r.timing.gpu_batch_us.unwrap_or(f64::NAN),
                        );
                    }
                }
            });
        }
    });

    println!("\nfinal metrics snapshot:");
    let snapshot = server.shutdown();
    println!("{}", snapshot.to_json());
}
