//! Serving demo: a multi-model inference server with dynamic batching.
//!
//! Run with: `cargo run --release --example serve_demo`
//!
//! Starts a `bfly-serve` server holding a dense baseline and a butterfly
//! SHL model (both forward-only — no gradient or momentum memory) on a
//! simulated 4-IPU pod *with a fault plan*: one replica crashes partway
//! into the run and recovers later, so the demo shows health-aware routing
//! riding out the outage — stranded batches retried on survivors, the
//! recovered replica re-paying its cold weight load — while a burst of
//! concurrent requests (one under an aggressive deadline) flows through.
//! Every response carries the class scores, the micro-batch the request
//! was coalesced into, the pod replica that served it, and the predicted
//! IPU/GPU device time next to measured wall time. The demo then drives a
//! short *flash-crowd ramp* through the elastic autoscaler — butterfly vs
//! the dense baseline at dim 1024 — and prints each method's
//! time-to-healthy: the simulated weight load a newly grown replica pays
//! before it can serve, where butterfly's O(n log n) factors replicate in
//! a fraction of the dense ~n²·4-byte warm-up. Ends with a graceful
//! shutdown and the final metrics snapshot as JSON.

use bfly_core::Method;
use bfly_data::TrafficTrace;
use bfly_serve::{
    closed_loop_models_with_pool, trace_loop, AutoscaleConfig, CacheConfig, FaultPlan, Routing,
    ScaleDecision, ServeConfig, ServedFrom, Server,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// The autoscale demo's fixed-pod starting point: one replica, cache off
/// so every request computes and the backlog signal is honest.
fn flash_crowd_config() -> ServeConfig {
    ServeConfig {
        dim: 1024,
        classes: 10,
        seed: 0xD310,
        max_batch: 32,
        max_wait: Duration::from_micros(200),
        queue_capacity: 512,
        workers: 2,
        cache: CacheConfig::disabled(),
        replicas: 1,
        routing: Routing::PowerOfTwoChoices,
        ..Default::default()
    }
}

/// Calibrates a method's steady one-replica capacity, then replays a flash
/// crowd spiking to 3x that capacity against an elastic pod (1 -> 3
/// replicas). Returns the grown replica's time-to-healthy, simulated µs.
fn flash_crowd_ramp(method: Method) -> Option<f64> {
    let name = method.label().to_lowercase();
    let probe = Server::start(flash_crowd_config(), &[method]).expect("dim 1024 fits");
    let capacity =
        closed_loop_models_with_pool(&probe, &[name.as_str()], 16, 40, 0xBEE5, 64).throughput_rps;
    probe.shutdown();

    // Quiet at half capacity, a 0.6 s spike at 3x, then back down.
    let trace = TrafficTrace::flash_crowd(capacity * 0.5, 6.0, 1.5, 0.3, 0.6);
    let arrivals = trace.arrivals(&mut ChaCha8Rng::seed_from_u64(17));
    let config = ServeConfig {
        autoscale: AutoscaleConfig {
            interval: Duration::from_millis(10),
            scale_up_queue_depth: 1.0,
            cooldown_windows: 1,
            ..AutoscaleConfig::bounded(1, 3)
        },
        ..flash_crowd_config()
    };
    let server = Server::start(config, &[method]).expect("dim 1024 fits");
    let report = trace_loop(&server, &name, &arrivals, 0xBEE5, 64, None);
    let scale = server.autoscale_report();
    let snapshot = server.shutdown();
    let healthy = scale.events.iter().find(|e| e.decision == ScaleDecision::Grow).map(|e| {
        let r = &snapshot.replicas[e.replica];
        if r.cold_loads > 0 {
            r.weight_load_us / r.cold_loads as f64
        } else {
            0.0
        }
    });
    let scale_ups: u64 = snapshot.replicas.iter().map(|r| r.scale_ups).sum();
    let drains: u64 = snapshot.replicas.iter().map(|r| r.drains).sum();
    println!(
        "{name:>9}: steady {capacity:>6.0} rps, {} arrivals offered, {} served, \
         {scale_ups} scale-ups, {drains} drains, time-to-healthy {}",
        arrivals.len(),
        report.completed - report.pod_down - report.deadline_exceeded,
        healthy.map_or("- (never grew)".into(), |us| format!("{us:.1} sim us")),
    );
    healthy
}

fn main() {
    let config = ServeConfig {
        dim: 256,
        classes: 10,
        seed: 0xD310,
        max_batch: 16,
        max_wait: Duration::from_micros(300),
        queue_capacity: 256,
        workers: 2,
        tensor_cores: false,
        replicas: 4,
        routing: Routing::PowerOfTwoChoices,
        // Replica 2 crashes once the pod has been presented 400 µs of
        // simulated compute and comes back at 1200 µs; between the two it
        // is invisible to routing, and on recovery it re-pays its weight
        // loads (its SRAM came back empty).
        fault_plan: FaultPlan::none().crash_at(400.0, 2).recover_at(1200.0, 2),
        ..Default::default()
    };
    let dim = config.dim;
    let server = Server::start(config, &[Method::Baseline, Method::Butterfly])
        .expect("dim 256 fits both methods");

    println!("serving models: {:?}\n", server.model_names());

    // A burst of requests from 4 client threads, alternating models — the
    // batchers coalesce each model's stream independently while the fault
    // plan plays out against the pod's simulated clock.
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let server = &server;
            scope.spawn(move || {
                let model = if client % 2 == 0 { "baseline" } else { "butterfly" };
                for seq in 0..50u64 {
                    let input: Vec<f32> =
                        (0..dim).map(|i| ((client + seq + i as u64) as f32 * 0.1).sin()).collect();
                    let handle = server.submit(model, client, seq, input).expect("admitted");
                    let r = handle.wait().expect("answered");
                    if seq == 49 {
                        println!(
                            "client {client} ({model:<9}): top score {:+.3}, served in a \
                             batch of {:>2} on replica {}, wall {:>4} us, predicted IPU \
                             {:>6.1} us, GPU {:>6.1} us",
                            r.output.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
                            r.timing.batch_size,
                            r.timing.replica.map_or("-".into(), |p| p.to_string()),
                            r.timing.total_us,
                            r.timing.ipu_batch_us.unwrap_or(f64::NAN),
                            r.timing.gpu_batch_us.unwrap_or(f64::NAN),
                        );
                    }
                }
            });
        }
    });

    // A per-request deadline override: zero means "already expired", so
    // the runtime answers DeadlineExceeded instead of computing.
    let doomed = server
        .submit_with_deadline("butterfly", 9, 0, vec![0.25; dim], Some(Duration::ZERO))
        .expect("admitted");
    let r = doomed.wait().expect("failures are answered, never dropped");
    assert_eq!(r.timing.source, ServedFrom::DeadlineExceeded);
    println!(
        "\ndeadline demo: client 9 seq 0 answered {:?} with empty output ({} scores)",
        r.timing.source,
        r.output.len()
    );

    // A flash-crowd ramp through the elastic autoscaler: the controller
    // grows the pod when the spike's backlog crosses its threshold, and
    // the grown replica's priced weight load *is* the time-to-healthy —
    // tiny for butterfly's factors, ~n²·4 bytes over IPU-Link for dense.
    println!("\nflash-crowd autoscale demo (dim 1024, pod 1 -> 3):");
    let butterfly_healthy = flash_crowd_ramp(Method::Butterfly);
    let baseline_healthy = flash_crowd_ramp(Method::Baseline);
    if let (Some(b), Some(d)) = (butterfly_healthy, baseline_healthy) {
        if d > 0.0 {
            println!(
                "a butterfly replica becomes healthy in {:.2}x the dense baseline's time",
                b / d
            );
        }
    }

    println!("\nfinal metrics snapshot:");
    let snapshot = server.shutdown();
    for replica in &snapshot.replicas {
        println!(
            "replica {}: up={}, crashes={}, recoveries={}, retried_batches={}, cold_loads={}",
            replica.replica,
            replica.up,
            replica.crashes,
            replica.recoveries,
            replica.retried_batches,
            replica.cold_loads
        );
    }
    println!("{}", snapshot.to_json());
}
