//! Training the paper's SHL benchmark (§4.2) on the synthetic
//! CIFAR-10-like task: dense baseline vs butterfly hidden layer.
//!
//! Run with: `cargo run --release --example train_cifar`
//! Optional env: BFLY_SAMPLES (default 2000), BFLY_EPOCHS (default 6).

use bfly_core::{build_shl, compression_percent, shl_param_count, Method};
use bfly_data::{generate, split, SynthSpec};
use bfly_nn::{fit, TrainConfig};
use bfly_tensor::seeded_rng;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let samples = env_usize("BFLY_SAMPLES", 2000);
    let epochs = env_usize("BFLY_EPOCHS", 6);
    let dim = 1024;
    let classes = 10;

    println!(
        "generating synthetic CIFAR-10-like data ({samples} samples, {dim}-dim, {classes} classes)"
    );
    let data = generate(&SynthSpec::cifar10_like(samples, 7));
    let mut rng = seeded_rng(8);
    let s = split(data, 0.2, 0.15, &mut rng);
    println!("split: {} train / {} val / {} test\n", s.train.len(), s.val.len(), s.test.len());

    // Table 3 hyperparameters: SGD(lr 0.001, momentum 0.9), batch 50, ReLU,
    // cross-entropy, 15% validation.
    let config = TrainConfig { epochs, seed: 9, verbose: true, ..TrainConfig::default() };

    for method in [Method::Baseline, Method::Butterfly] {
        let n_params = shl_param_count(method, dim, classes);
        println!("=== {method} ({n_params} parameters) ===");
        let mut model = build_shl(method, dim, classes, &mut rng)
            .expect("1024 is a power of two, every method is valid");
        let report = fit(&mut model, &s, &config);
        println!(
            "{method}: test accuracy {:.2}% after {} steps ({:.1}s host training)\n",
            report.test_accuracy * 100.0,
            report.steps,
            report.train_seconds
        );
    }
    println!(
        "butterfly uses {:.1}% fewer parameters than the dense baseline",
        compression_percent(Method::Butterfly, dim, classes)
    );
    println!("(paper: 98.5% compression at <1.5% accuracy cost on CIFAR-10)");
}
