//! The compress → deploy → serve pipeline: bring a trained dense model,
//! serve it compressed.
//!
//! Run with: `cargo run --release --example compress_deploy`
//!
//! 1. **Train** a deep dense MLP classifier on the synthetic task.
//! 2. **Compress** it offline with the whole-model driver: every hidden
//!    affine layer is fitted by the deterministic hierarchical sweep under
//!    a per-layer error budget; the narrow classifier head stays dense
//!    because a butterfly would not save parameters there.
//! 3. **Fine-tune** the compressed stack briefly — an arbitrary trained
//!    dense weight has little butterfly structure to identify (see
//!    `compress_layer`), so a few epochs of fine-tuning recover the
//!    end-task accuracy the projection loses, at the compressed parameter
//!    count.
//! 4. **Deploy** both stacks — the dense original and its compressed twin,
//!    with their exact weights — into the serving fleet as prebuilt models
//!    and drive identical closed-loop load at each over the simulated pod.

use bfly_core::{compress_model, Method, ModelCompressConfig};
use bfly_data::{generate, split, SynthSpec};
use bfly_nn::{build_dense_mlp, evaluate, fit, Layer, TrainConfig};
use bfly_serve::{closed_loop_models_with_pool, CacheConfig, PrebuiltModel, ServeConfig, Server};
use bfly_tensor::seeded_rng;
use std::time::Duration;

fn main() {
    let dim = 256usize;
    let classes = 10usize;
    let spec = SynthSpec {
        dim,
        num_classes: classes,
        samples: 2400,
        latent_dim: 24,
        latent_noise: 1.2,
        pixel_noise: 0.2,
        seed: 52,
    };
    let data = generate(&spec);
    let mut rng = seeded_rng(53);
    let s = split(data, 0.2, 0.15, &mut rng);

    // 1. Train the dense MLP the user "brings".
    println!("1) training a dense MLP {dim} -> {dim} -> {dim} -> {classes}...");
    let mut dense = build_dense_mlp(dim, &[dim, dim], classes, &mut rng);
    let dense_params = dense.param_count();
    let report =
        fit(&mut dense, &s, &TrainConfig { epochs: 10, seed: 54, ..TrainConfig::default() });
    let dense_acc = report.test_accuracy;
    println!("   dense accuracy {:.2}%  ({dense_params} parameters)", dense_acc * 100.0);

    // 2. Offline compression: hierarchical sweep, default budget.
    println!("2) compressing layer-by-layer (hierarchical identification sweep)...");
    let result = compress_model(&dense, &ModelCompressConfig::default(), &mut rng)
        .expect("dense MLP stacks are supported");
    for layer in &result.layers {
        println!(
            "   layer {:>2} {:<10} {:?}: operator error {:.3}, {} -> {} params",
            layer.index,
            layer.name,
            layer.decision,
            layer.operator_error,
            layer.dense_params,
            layer.compressed_params
        );
    }
    let ratio = result.compression_ratio();
    println!(
        "   whole model: {} -> {} params ({:.1}x compression)",
        result.dense_params, result.compressed_params, ratio
    );

    // 3. Fine-tune the compressed stack to recover end-task accuracy.
    let mut compressed = result.model;
    let before = evaluate(&mut compressed, &s.test);
    println!("3) accuracy after projection, before fine-tune: {:.2}%", before * 100.0);
    let ft = fit(
        &mut compressed,
        &s,
        &TrainConfig { epochs: 30, lr: 0.01, seed: 55, ..TrainConfig::default() },
    );
    let compressed_acc = ft.test_accuracy;
    println!(
        "   accuracy after fine-tune: {:.2}%  (delta vs dense {:+.2} pts at {:.1}x fewer params)",
        compressed_acc * 100.0,
        (compressed_acc - dense_acc) * 100.0,
        ratio
    );

    // 4. Deploy both stacks into the fleet with their exact weights.
    println!("4) serving dense vs compressed over the pod...");
    let compressed_params = compressed.param_count();
    let config = ServeConfig {
        dim,
        classes,
        seed: 56,
        max_batch: 16,
        max_wait: Duration::from_micros(300),
        queue_capacity: 256,
        workers: 2,
        cache: CacheConfig::disabled(),
        replicas: 4,
        ..Default::default()
    };
    let server = Server::start_fleet_prebuilt(
        config,
        &[],
        vec![
            PrebuiltModel::new("mlp-dense", Method::Baseline, dense),
            PrebuiltModel::new("mlp-butterfly", Method::Butterfly, compressed),
        ],
    )
    .expect("prebuilt fleet");
    println!(
        "   resident weights: mlp-dense {} KiB, mlp-butterfly {} KiB",
        4 * dense_params / 1024,
        4 * compressed_params / 1024
    );
    for name in ["mlp-dense", "mlp-butterfly"] {
        let load = closed_loop_models_with_pool(&server, &[name], 8, 40, 57, 64);
        println!(
            "   {name:<14} {:>7.0} rps, p50 {:>5} us, p99 {:>5} us, mean batch {:.1}",
            load.throughput_rps, load.latency_p50_us, load.latency_p99_us, load.mean_batch
        );
    }
    let snapshot = server.shutdown();
    println!(
        "\nserved {} requests; the compressed model answers the same traffic at {:.1}x fewer \
         resident bytes.",
        snapshot.models.iter().map(|m| m.completed).sum::<u64>(),
        dense_params as f64 / compressed_params as f64
    );
}
