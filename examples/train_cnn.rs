//! A small CNN on the synthetic image task, with its channel-mixing (1x1)
//! convolution implemented either densely or as a butterfly — the
//! convolutional side of the paper's claim that butterfly replaces
//! "fully-connected and convolutional layers".
//!
//! Architecture: Conv3x3(1 -> C) -> ReLU -> MaxPool2 -> {1x1 mix, dense or
//! butterfly} -> ReLU -> GlobalAvgPool -> Dense(C -> 10).
//!
//! Run with: `cargo run --release --example train_cnn`
//! Optional env: BFLY_SAMPLES (default 1500), BFLY_EPOCHS (default 4).

use bfly_core::ButterflyConv1x1;
use bfly_data::{generate_images, split, ImageSpec};
use bfly_nn::{
    fit, Conv2d, ConvShape, Dense, GlobalAvgPool, Layer, MaxPool2, Relu, Sequential, TrainConfig,
};
use bfly_tensor::seeded_rng;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_cnn(channels: usize, butterfly_mix: bool, seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    let stem = ConvShape {
        in_channels: 1,
        out_channels: channels,
        height: 32,
        width: 32,
        kernel: 3,
        padding: 1,
    };
    let mix: Box<dyn Layer> = if butterfly_mix {
        Box::new(ButterflyConv1x1::new(channels, channels, 16, 16, &mut rng))
    } else {
        Box::new(Conv2d::new(
            ConvShape {
                in_channels: channels,
                out_channels: channels,
                height: 16,
                width: 16,
                kernel: 1,
                padding: 0,
            },
            &mut rng,
        ))
    };
    Sequential::new()
        .push(Box::new(Conv2d::new(stem, &mut rng)))
        .push(Box::new(Relu::new()))
        .push(Box::new(MaxPool2::new(channels, 32, 32)))
        .push(mix)
        .push(Box::new(Relu::new()))
        .push(Box::new(GlobalAvgPool::new(channels, 16, 16)))
        .push(Box::new(Dense::new(channels, 10, &mut rng)))
}

fn main() {
    let samples = env_usize("BFLY_SAMPLES", 1500);
    let epochs = env_usize("BFLY_EPOCHS", 8);
    let channels = 32usize;

    println!("CNN on synthetic oriented-grating images ({samples} samples, {epochs} epochs, {channels} channels)\n");
    let data = generate_images(&ImageSpec::gratings32(samples, 77));
    let mut rng = seeded_rng(78);
    let s = split(data, 0.2, 0.15, &mut rng);

    for butterfly_mix in [false, true] {
        let label = if butterfly_mix { "butterfly 1x1 mix" } else { "dense 1x1 mix" };
        let mut model = build_cnn(channels, butterfly_mix, 79);
        let config =
            TrainConfig { epochs, lr: 0.05, seed: 80, verbose: false, ..TrainConfig::default() };
        let report = fit(&mut model, &s, &config);
        println!(
            "{label:>18}: acc {:.2}%  |  {} total params  |  {:.1}s host training",
            report.test_accuracy * 100.0,
            model.param_count(),
            report.train_seconds
        );
    }
    println!(
        "\nthe butterfly mix replaces the {channels}x{channels} pointwise conv\n\
         ({} weights) with {} twiddle parameters — a ~3x compression that, at\n\
         this small channel count, trades some accuracy; the ratio (and the\n\
         case for butterfly) grows with C: 2 C log2 C vs C^2.",
        channels * channels + channels,
        2 * channels * (channels.trailing_zeros() as usize) + channels,
    );
}
