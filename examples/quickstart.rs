//! Quickstart: replace a dense layer with a butterfly factorization.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Shows the core value proposition of the paper: an `n x n` dense layer
//! holds `n^2` parameters; the butterfly factorization represents a
//! learnable structured transform with `2 n log2 n` parameters and applies
//! it in `O(n log n)` work — the memory reduction that matters on a device
//! with 900 MB of on-chip SRAM.

use bfly_core::{Butterfly, ButterflyLayer};
use bfly_nn::{Dense, Layer};
use bfly_tensor::{seeded_rng, Matrix};

fn main() {
    let n = 1024;
    let mut rng = seeded_rng(42);

    // A dense layer and its butterfly replacement.
    let dense = Dense::new(n, n, &mut rng);
    let butterfly = ButterflyLayer::new(n, n, &mut rng);

    println!(
        "dense layer      : {:>9} parameters ({} KiB)",
        dense.param_count(),
        dense.param_count() * 4 / 1024
    );
    println!(
        "butterfly layer  : {:>9} parameters ({} KiB)",
        butterfly.param_count(),
        butterfly.param_count() * 4 / 1024
    );
    println!(
        "compression      : {:.1}% fewer parameters\n",
        100.0 * (1.0 - butterfly.param_count() as f64 / dense.param_count() as f64)
    );

    // Both are drop-in layers: forward a batch through each.
    let mut dense = dense;
    let mut butterfly = butterfly;
    let x = Matrix::random_uniform(8, n, 1.0, &mut rng);
    let y_dense = dense.forward(&x, false);
    let y_bfly = butterfly.forward(&x, false);
    println!(
        "dense output     : {:?} (first row, 4 entries) {:?}",
        y_dense.shape(),
        &y_dense.row(0)[..4]
    );
    println!(
        "butterfly output : {:?} (first row, 4 entries) {:?}\n",
        y_bfly.shape(),
        &y_bfly.row(0)[..4]
    );

    // The butterfly *exactly* represents classic fast transforms: here the
    // Walsh-Hadamard transform, with zero error.
    let h_exact = Butterfly::hadamard(16, true);
    let h_dense = h_exact.materialize();
    let probe: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();
    let via_butterfly = h_exact.apply(&probe);
    let via_dense = bfly_tensor::matvec(&h_dense, &probe);
    let max_err =
        via_butterfly.iter().zip(&via_dense).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    println!("Hadamard-16 as a butterfly: max error vs dense H = {max_err:.2e}");
    println!("(Eq. 1 of the paper: the FFT itself is the complex special case)");
}
